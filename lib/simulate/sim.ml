module Graph = Netembed_graph.Graph
module Attrs = Netembed_attr.Attrs
module Value = Netembed_attr.Value
module Rng = Netembed_rng.Rng
module Ledger = Netembed_ledger.Ledger
module Engine = Netembed_core.Engine
module Mapping = Netembed_core.Mapping
module Problem = Netembed_core.Problem
module Parser = Netembed_expr.Parser
module Telemetry = Netembed_telemetry.Telemetry
module Model = Netembed_service.Model
module Service = Netembed_service.Service
module Request = Netembed_service.Request

type policy = Admit_greedy | No_defrag | Defrag_threshold

let policy_name = function
  | Admit_greedy -> "admit_greedy"
  | No_defrag -> "no_defrag"
  | Defrag_threshold -> "defrag_threshold"

let policy_of_string = function
  | "admit_greedy" -> Some Admit_greedy
  | "no_defrag" -> Some No_defrag
  | "defrag_threshold" -> Some Defrag_threshold
  | _ -> None

let all_policies = [ Admit_greedy; No_defrag; Defrag_threshold ]

type victim_order = Smallest_revenue | Highest_blocking

let victim_order_name = function
  | Smallest_revenue -> "smallest_revenue"
  | Highest_blocking -> "highest_blocking"

let victim_order_of_string = function
  | "smallest_revenue" -> Some Smallest_revenue
  | "highest_blocking" -> Some Highest_blocking
  | _ -> None

type config = {
  seed : int;
  policy : policy;
  horizon : float;
  arrival_rate : float;
  hold_shape : float;
  hold_mean : float;
  hold_cap : float;
  size_classes : float array;
  size_skew : float;
  link_fraction : float;
  bandwidth_per_cpu : float;
  candidates : int;
  frag_threshold : float;
  reject_threshold : float;
  reject_window : int;
  max_migrations : int;
  victim_order : victim_order;
  sample_every : float;
  domains : int;
  inject_migration_failure : (int -> bool) option;
}

let default_config =
  {
    seed = 42;
    policy = Defrag_threshold;
    horizon = 300.0;
    arrival_rate = 1.0;
    hold_shape = 1.5;
    hold_mean = 40.0;
    hold_cap = 400.0;
    size_classes = [| 300.0; 600.0; 1200.0; 2400.0 |];
    size_skew = 0.9;
    link_fraction = 0.3;
    bandwidth_per_cpu = 0.1;
    candidates = 24;
    frag_threshold = 0.45;
    reject_threshold = 0.3;
    reject_window = 20;
    max_migrations = 4;
    victim_order = Smallest_revenue;
    sample_every = 10.0;
    domains = 1;
    inject_migration_failure = None;
  }

type sample = {
  s_time : float;
  s_arrivals : int;
  s_accepts : int;
  s_rejects : int;
  s_active : int;
  s_fragmentation : float;
  s_utilization : (string * string * float) list;
}

type stats = {
  arrivals : int;
  accepts : int;
  rejects : int;
  retry_accepts : int;
  departures : int;
  migrations : int;
  migration_failures : int;
  defrag_passes : int;
  offered_revenue : float;
  accepted_revenue : float;
  acceptance_rate : float;
  revenue_acceptance : float;
  final_fragmentation : float;
  peak_fragmentation : float;
  mean_fragmentation : float;
  mean_cpu_utilization : float;
  invariant_violations : int;
  samples : sample list;
  event_log : string list;
}

(* ------------------------------------------------------------------ *)
(* Departure queue: a binary min-heap on (time, tenant id) so equal
   departure times pop in arrival order — part of the replay contract. *)

module Heap = struct
  type entry = { h_time : float; h_id : int }
  type t = { mutable arr : entry array; mutable len : int }

  let dummy = { h_time = 0.0; h_id = 0 }
  let create () = { arr = Array.make 16 dummy; len = 0 }

  let less a b =
    a.h_time < b.h_time || (a.h_time = b.h_time && a.h_id < b.h_id)

  let push h time id =
    if h.len = Array.length h.arr then begin
      let bigger = Array.make (2 * h.len) dummy in
      Array.blit h.arr 0 bigger 0 h.len;
      h.arr <- bigger
    end;
    let i = ref h.len in
    h.len <- h.len + 1;
    h.arr.(!i) <- { h_time = time; h_id = id };
    while
      !i > 0
      &&
      let p = (!i - 1) / 2 in
      less h.arr.(!i) h.arr.(p)
    do
      let p = (!i - 1) / 2 in
      let tmp = h.arr.(p) in
      h.arr.(p) <- h.arr.(!i);
      h.arr.(!i) <- tmp;
      i := p
    done

  let peek h = if h.len = 0 then None else Some h.arr.(0)

  let pop h =
    let top = h.arr.(0) in
    h.len <- h.len - 1;
    h.arr.(0) <- h.arr.(h.len);
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < h.len && less h.arr.(l) h.arr.(!smallest) then smallest := l;
      if r < h.len && less h.arr.(r) h.arr.(!smallest) then smallest := r;
      if !smallest = !i then continue := false
      else begin
        let tmp = h.arr.(!smallest) in
        h.arr.(!smallest) <- h.arr.(!i);
        h.arr.(!i) <- tmp;
        i := !smallest
      end
    done;
    top
end

(* ------------------------------------------------------------------ *)
(* Tenant queries *)

let node_constraint_text = "rSource.cpuMhz >= vSource.cpuMhz"
let edge_constraint_single = "true"
let edge_constraint_pair = "rEdge.bandwidth >= vEdge.bandwidth"

let single_query cpu =
  let g = Graph.create ~name:"tenant" () in
  ignore (Graph.add_node g (Attrs.of_list [ ("cpuMhz", Value.Float cpu) ]));
  g

let pair_query cpu bw =
  let g = Graph.create ~name:"tenant" () in
  let half = Attrs.of_list [ ("cpuMhz", Value.Float (cpu /. 2.0)) ] in
  let a = Graph.add_node g half in
  let b = Graph.add_node g half in
  ignore (Graph.add_edge g a b (Attrs.of_list [ ("bandwidth", Value.Float bw) ]));
  g

(* The injected-failure path submits the victim's query with demands
   scaled far past any substrate, so the ledger commit inside
   Service.migrate must fail and roll back. *)
let impossible_query q =
  let g = Graph.copy q in
  let scale attrs =
    Attrs.map
      (fun _ v ->
        match v with
        | Value.Float f -> Value.Float (f *. 1e6)
        | Value.Int i -> Value.Float (float_of_int i *. 1e6)
        | other -> other)
      attrs
  in
  Graph.iter_nodes (fun v -> Graph.set_node_attrs g v (scale (Graph.node_attrs g v))) g;
  Graph.iter_edges (fun e _ _ -> Graph.set_edge_attrs g e (scale (Graph.edge_attrs g e))) g;
  g

type tenant = {
  t_id : int;
  t_cpu : float;
  t_pair : bool;
  t_hold : float;
  t_revenue : float;
  t_request : Request.t;
  mutable t_alloc : int;
  mutable t_mapping : Mapping.t;
}

let hosts_string m =
  Mapping.to_array m |> Array.to_list |> List.map string_of_int
  |> String.concat "-"

(* ------------------------------------------------------------------ *)

type state = {
  cfg : config;
  rng : Rng.t;
  service : Service.t;
  ledger : Ledger.t;
  live : (int, tenant) Hashtbl.t;
  heap : Heap.t;
  mutable events : string list;
  mutable now : float;
  mutable n_arrivals : int;
  mutable n_accepts : int;
  mutable n_rejects : int;
  mutable n_retry_accepts : int;
  mutable n_departures : int;
  mutable n_migrations : int;
  mutable n_migration_failures : int;
  mutable n_defrag_passes : int;
  mutable n_violations : int;
  mutable offered : float;
  mutable accepted : float;
  mutable peak_frag : float;
  mutable migration_attempts : int;
  (* trailing first-attempt outcomes, true = rejected *)
  reject_ring : bool array;
  mutable ring_filled : int;
  mutable ring_next : int;
  mutable samples_rev : sample list;
  mutable next_sample : float;
  (* telemetry *)
  c_arrivals : Telemetry.Counter.t;
  c_accepts : Telemetry.Counter.t;
  c_rejects : Telemetry.Counter.t;
  c_departures : Telemetry.Counter.t;
  c_migrations : Telemetry.Counter.t;
  c_migration_failures : Telemetry.Counter.t;
  c_defrag_passes : Telemetry.Counter.t;
  g_fragmentation : Telemetry.Gauge.t;
}

let event st fmt =
  Printf.ksprintf
    (fun line -> st.events <- Printf.sprintf "t=%.6f %s" st.now line :: st.events)
    fmt

let frag st = Ledger.fragmentation_index st.ledger

let observe_frag st =
  let f = frag st in
  if f > st.peak_frag then st.peak_frag <- f;
  Telemetry.Gauge.set st.g_fragmentation f;
  f

(* Over-commit would mean the atomic-commit contract broke mid-run. *)
let check_overcommit st =
  List.iter
    (fun (resource, _kind, used, cap) ->
      if used > cap +. (1e-6 *. (Float.abs cap +. 1.0)) then begin
        st.n_violations <- st.n_violations + 1;
        event st "violation over-commit resource=%s used=%g cap=%g" resource
          used cap
      end)
    (Ledger.utilization st.ledger)

let record_first_attempt st rejected =
  let n = Array.length st.reject_ring in
  if n > 0 then begin
    st.reject_ring.(st.ring_next) <- rejected;
    st.ring_next <- (st.ring_next + 1) mod n;
    if st.ring_filled < n then st.ring_filled <- st.ring_filled + 1
  end

let windowed_reject_rate st =
  if st.ring_filled < 5 then 0.0
  else begin
    let rejected = ref 0 in
    for i = 0 to st.ring_filled - 1 do
      if st.reject_ring.(i) then incr rejected
    done;
    float_of_int !rejected /. float_of_int st.ring_filled
  end

let take_sample st time =
  let util =
    List.map
      (fun (resource, kind, used, cap) ->
        ( resource,
          (match kind with `Node -> "node" | `Edge -> "edge"),
          if cap <= 0.0 then 0.0 else used /. cap ))
      (Ledger.utilization st.ledger)
  in
  st.samples_rev <-
    {
      s_time = time;
      s_arrivals = st.n_arrivals;
      s_accepts = st.n_accepts;
      s_rejects = st.n_rejects;
      s_active = Hashtbl.length st.live;
      s_fragmentation = frag st;
      s_utilization = util;
    }
    :: st.samples_rev

let flush_samples st upto =
  while st.next_sample <= upto do
    take_sample st st.next_sample;
    st.next_sample <- st.next_sample +. st.cfg.sample_every
  done

(* ------------------------------------------------------------------ *)
(* Admission *)

(* Best-fit: land on the hosts with the least free cpu that still fit,
   so big contiguous blocks survive for big tenants.  Deterministic
   tie-break on the mapping itself. *)
let mapping_score st m =
  let total = ref 0.0 in
  Array.iter
    (fun host ->
      total := !total +. Ledger.residual st.ledger (Ledger.Node host) "cpuMhz")
    (Mapping.to_array m);
  !total

let pick_mapping st mappings =
  match (st.cfg.policy, mappings) with
  | _, [] -> None
  | Admit_greedy, first :: _ -> Some first
  | (No_defrag | Defrag_threshold), first :: rest ->
      let best = ref first and best_score = ref (mapping_score st first) in
      List.iter
        (fun m ->
          let s = mapping_score st m in
          if s < !best_score -. 1e-9
             || (Float.abs (s -. !best_score) <= 1e-9 && Mapping.compare m !best < 0)
          then begin
            best := m;
            best_score := s
          end)
        rest;
      Some !best

type attempt = Accepted of int * Mapping.t | No_mapping | Refused of string

let try_admit st tenant =
  match Service.submit st.service tenant.t_request with
  | Error _ -> Refused "admission"
  | Ok answer -> (
      match pick_mapping st answer.Service.result.Engine.mappings with
      | None -> No_mapping
      | Some m -> (
          match Service.allocate_shared st.service answer m with
          | Ok alloc -> Accepted (alloc, m)
          | Error _ -> Refused "commit"))

type admit_outcome = Admitted | Rejected of string

let admit st tenant ~retry =
  match try_admit st tenant with
  | Accepted (alloc, m) ->
      tenant.t_alloc <- alloc;
      tenant.t_mapping <- m;
      Hashtbl.replace st.live tenant.t_id tenant;
      Heap.push st.heap (st.now +. tenant.t_hold) tenant.t_id;
      st.n_accepts <- st.n_accepts + 1;
      if retry then st.n_retry_accepts <- st.n_retry_accepts + 1;
      st.accepted <- st.accepted +. tenant.t_revenue;
      Telemetry.Counter.incr st.c_accepts;
      event st "%s id=%d alloc=%d hosts=%s"
        (if retry then "retry-accept" else "accept")
        tenant.t_id alloc (hosts_string m);
      Admitted
  | No_mapping ->
      if not retry then event st "reject id=%d reason=no_mapping" tenant.t_id;
      Rejected "no_mapping"
  | Refused reason ->
      if not retry then event st "reject id=%d reason=%s" tenant.t_id reason;
      Rejected reason

(* ------------------------------------------------------------------ *)
(* Defragmentation *)

let credit_back graph charge =
  List.iter
    (fun { Ledger.target; resource; amount } ->
      match target with
      | Ledger.Node v ->
          let attrs = Graph.node_attrs graph v in
          let cur = Option.value ~default:0.0 (Attrs.float resource attrs) in
          Graph.set_node_attrs graph v
            (Attrs.add resource (Value.Float (cur +. amount)) attrs)
      | Ledger.Edge e ->
          let attrs = Graph.edge_attrs graph e in
          let cur = Option.value ~default:0.0 (Attrs.float resource attrs) in
          Graph.set_edge_attrs graph e
            (Attrs.add resource (Value.Float (cur +. amount)) attrs))
    charge

let credited_score graph m =
  let total = ref 0.0 in
  Array.iter
    (fun host ->
      let attrs = Graph.node_attrs graph host in
      total := !total +. Option.value ~default:0.0 (Attrs.float "cpuMhz" attrs))
    (Mapping.to_array m);
  !total

let victims st =
  let all = Hashtbl.fold (fun _ t acc -> t :: acc) st.live [] in
  match st.cfg.victim_order with
  | Smallest_revenue ->
      List.sort
        (fun a b ->
          match compare a.t_revenue b.t_revenue with
          | 0 -> compare a.t_id b.t_id
          | c -> c)
        all
  | Highest_blocking ->
      let loosest t =
        Array.fold_left
          (fun acc host ->
            Float.max acc (Ledger.residual st.ledger (Ledger.Node host) "cpuMhz"))
          0.0 (Mapping.to_array t.t_mapping)
      in
      let keyed = List.map (fun t -> (loosest t, t)) all in
      List.map snd
        (List.sort
           (fun (ka, a) (kb, b) ->
             match compare kb ka with 0 -> compare a.t_id b.t_id | c -> c)
           keyed)

let parsed_node_constraint = lazy (Parser.parse node_constraint_text)
let parsed_edge_single = lazy (Parser.parse edge_constraint_single)
let parsed_edge_pair = lazy (Parser.parse edge_constraint_pair)

(* Re-search one victim on the residual graph with its own charge
   credited back, so the move may reuse capacity the victim itself
   vacates — then migrate atomically through the service. *)
let try_migrate st tenant =
  match Service.allocation_charge st.service tenant.t_alloc with
  | None -> false
  | Some charge -> (
      let host = Model.residual_snapshot (Service.model st.service) in
      credit_back host charge;
      let edge_ast =
        Lazy.force
          (if tenant.t_pair then parsed_edge_pair else parsed_edge_single)
      in
      let problem =
        Problem.make
          ~node_constraint:(Lazy.force parsed_node_constraint)
          ~host ~query:tenant.t_request.Request.query edge_ast
      in
      let options =
        {
          Engine.default_options with
          mode = Engine.At_most st.cfg.candidates;
          seed = st.cfg.seed;
        }
      in
      let result = Engine.run ~options Engine.ECF problem in
      let cur_score = credited_score host tenant.t_mapping in
      let best =
        List.fold_left
          (fun acc m ->
            if Mapping.equal m tenant.t_mapping then acc
            else
              let s = credited_score host m in
              match acc with
              | Some (_, best_s) when best_s <= s +. 1e-9 -> acc
              | _ -> Some (m, s))
          None result.Engine.mappings
      in
      match best with
      | Some (m, s) when s < cur_score -. 1e-9 -> (
          st.migration_attempts <- st.migration_attempts + 1;
          let inject =
            match st.cfg.inject_migration_failure with
            | Some f -> f st.migration_attempts
            | None -> false
          in
          let query =
            if inject then impossible_query tenant.t_request.Request.query
            else tenant.t_request.Request.query
          in
          match Service.migrate st.service tenant.t_alloc ~query m with
          | Ok alloc' ->
              event st "migrate id=%d alloc=%d->%d hosts=%s=>%s" tenant.t_id
                tenant.t_alloc alloc'
                (hosts_string tenant.t_mapping)
                (hosts_string m);
              tenant.t_alloc <- alloc';
              tenant.t_mapping <- m;
              st.n_migrations <- st.n_migrations + 1;
              Telemetry.Counter.incr st.c_migrations;
              true
          | Error _ ->
              event st "migrate-fail id=%d alloc=%d (rolled back)" tenant.t_id
                tenant.t_alloc;
              st.n_migration_failures <- st.n_migration_failures + 1;
              Telemetry.Counter.incr st.c_migration_failures;
              false)
      | _ -> false)

let defrag_pass st =
  st.n_defrag_passes <- st.n_defrag_passes + 1;
  Telemetry.Counter.incr st.c_defrag_passes;
  let before = frag st in
  let attempted = ref 0 and moved = ref 0 in
  List.iter
    (fun tenant ->
      if !attempted < st.cfg.max_migrations then begin
        let start = st.migration_attempts in
        if try_migrate st tenant then incr moved;
        if st.migration_attempts > start then incr attempted
      end)
    (victims st);
  let after = observe_frag st in
  event st "defrag pass=%d frag=%.4f->%.4f moved=%d/%d" st.n_defrag_passes
    before after !moved !attempted

(* Defrag only helps fragmentation-limited rejects: the aggregate
   admission check passed (capacity exists somewhere) yet no embedding
   fit, or a picked embedding failed to commit.  Aggregate-capacity
   rejects ("admission") are pure overload — migration cannot create
   capacity, so passes there would just churn the placement. *)
let should_defrag st reason fragmentation =
  st.cfg.policy = Defrag_threshold
  && reason <> "admission"
  && Hashtbl.length st.live > 0
  && (fragmentation >= st.cfg.frag_threshold
     || windowed_reject_rate st >= st.cfg.reject_threshold)

(* ------------------------------------------------------------------ *)
(* Events *)

let on_arrival st tenant =
  st.n_arrivals <- st.n_arrivals + 1;
  Telemetry.Counter.incr st.c_arrivals;
  st.offered <- st.offered +. tenant.t_revenue;
  event st "arrive id=%d cpu=%g kind=%s hold=%.6f" tenant.t_id tenant.t_cpu
    (if tenant.t_pair then "pair" else "single")
    tenant.t_hold;
  (match admit st tenant ~retry:false with
  | Admitted -> record_first_attempt st false
  | Rejected reason ->
      record_first_attempt st true;
      let fragmentation = frag st in
      let retried =
        if should_defrag st reason fragmentation then begin
          event st "defrag-trigger frag=%.4f reject_rate=%.2f" fragmentation
            (windowed_reject_rate st);
          defrag_pass st;
          admit st tenant ~retry:true = Admitted
        end
        else false
      in
      if not retried then begin
        st.n_rejects <- st.n_rejects + 1;
        Telemetry.Counter.incr st.c_rejects
      end);
  ignore (observe_frag st);
  check_overcommit st

let on_departure st id =
  match Hashtbl.find_opt st.live id with
  | None ->
      st.n_violations <- st.n_violations + 1;
      event st "violation departure of unknown tenant id=%d" id
  | Some tenant ->
      Hashtbl.remove st.live id;
      if Service.free st.service tenant.t_alloc then begin
        st.n_departures <- st.n_departures + 1;
        Telemetry.Counter.incr st.c_departures;
        event st "depart id=%d alloc=%d" id tenant.t_alloc
      end
      else begin
        st.n_violations <- st.n_violations + 1;
        event st "violation free of dead allocation id=%d alloc=%d" id
          tenant.t_alloc
      end;
      ignore (observe_frag st);
      check_overcommit st

(* ------------------------------------------------------------------ *)

let draw_tenant st id =
  let cfg = st.cfg in
  let rank = Rng.zipf st.rng ~n:(Array.length cfg.size_classes) ~s:cfg.size_skew in
  let cpu = cfg.size_classes.(rank - 1) in
  let pair = Rng.float st.rng 1.0 < cfg.link_fraction in
  let scale = cfg.hold_mean *. (cfg.hold_shape -. 1.0) /. cfg.hold_shape in
  let hold =
    Rng.bounded_pareto st.rng ~shape:cfg.hold_shape ~scale
      ~cap:(Float.max scale cfg.hold_cap)
  in
  let query, edge_c =
    if pair then (pair_query cpu (cpu *. cfg.bandwidth_per_cpu), edge_constraint_pair)
    else (single_query cpu, edge_constraint_single)
  in
  let request =
    Request.make ~node_constraint:node_constraint_text ~algorithm:Engine.ECF
      ~mode:(Engine.At_most cfg.candidates) ~query edge_c
  in
  {
    t_id = id;
    t_cpu = cpu;
    t_pair = pair;
    t_hold = hold;
    t_revenue = cpu *. hold;
    t_request = request;
    t_alloc = -1;
    t_mapping = Mapping.of_array [||];
  }

let final_checks st =
  if Hashtbl.length st.live <> 0 then begin
    st.n_violations <- st.n_violations + 1;
    event st "violation %d tenants still live after drain" (Hashtbl.length st.live)
  end;
  if Ledger.outstanding st.ledger <> 0 then begin
    st.n_violations <- st.n_violations + 1;
    event st "violation %d allocations outstanding after drain"
      (Ledger.outstanding st.ledger)
  end;
  List.iter
    (fun (resource, _kind, used, _cap) ->
      (* bit-exact restore: release recomputes usage from the remaining
         allocations, so a drained ledger must read exactly 0.0 *)
      if used <> 0.0 then begin
        st.n_violations <- st.n_violations + 1;
        event st "violation residual usage %g on %s after drain" used resource
      end)
    (Ledger.utilization st.ledger)

let run ?registry cfg substrate =
  if cfg.arrival_rate <= 0.0 then invalid_arg "Sim.run: arrival_rate <= 0";
  if Array.length cfg.size_classes = 0 then
    invalid_arg "Sim.run: empty size_classes";
  if cfg.sample_every <= 0.0 then invalid_arg "Sim.run: sample_every <= 0";
  let registry =
    match registry with Some r -> r | None -> Telemetry.Registry.create ()
  in
  let model = Model.create substrate in
  let service = Service.create ~registry ~domains:cfg.domains model in
  let counter name help = Telemetry.Registry.counter registry ~help name in
  let st =
    {
      cfg;
      rng = Rng.make cfg.seed;
      service;
      ledger = Model.ledger (Service.model service);
      live = Hashtbl.create 64;
      heap = Heap.create ();
      events = [];
      now = 0.0;
      n_arrivals = 0;
      n_accepts = 0;
      n_rejects = 0;
      n_retry_accepts = 0;
      n_departures = 0;
      n_migrations = 0;
      n_migration_failures = 0;
      n_defrag_passes = 0;
      n_violations = 0;
      offered = 0.0;
      accepted = 0.0;
      peak_frag = 0.0;
      migration_attempts = 0;
      reject_ring = Array.make (max 1 cfg.reject_window) false;
      ring_filled = 0;
      ring_next = 0;
      samples_rev = [];
      next_sample = cfg.sample_every;
      c_arrivals = counter "netembed_sim_arrivals_total" "tenant arrivals";
      c_accepts = counter "netembed_sim_accepts_total" "tenants admitted";
      c_rejects = counter "netembed_sim_rejects_total" "tenants turned away";
      c_departures = counter "netembed_sim_departures_total" "tenants departed";
      c_migrations = counter "netembed_sim_migrations_total" "defrag migrations";
      c_migration_failures =
        counter "netembed_sim_migration_failures_total"
          "defrag migrations rolled back";
      c_defrag_passes = counter "netembed_sim_defrag_passes_total" "defrag passes";
      g_fragmentation =
        Telemetry.Registry.gauge registry
          ~help:"residual-capacity dispersion, 0 = consolidated"
          "netembed_sim_fragmentation";
    }
  in
  let next_arrival = ref (Rng.exponential st.rng ~mean:(1.0 /. cfg.arrival_rate)) in
  let next_id = ref 0 in
  let running = ref true in
  while !running do
    let arrival =
      match !next_arrival with t when t <= cfg.horizon -> Some t | _ -> None
    in
    let departure = Heap.peek st.heap in
    match (arrival, departure) with
    | None, None -> running := false
    | arr, dep ->
        (* departures first on ties: capacity frees before the next ask *)
        let take_departure =
          match (arr, dep) with
          | _, None -> false
          | None, Some _ -> true
          | Some at, Some d -> d.Heap.h_time <= at
        in
        if take_departure then begin
          let d = Heap.pop st.heap in
          flush_samples st d.Heap.h_time;
          st.now <- d.Heap.h_time;
          on_departure st d.Heap.h_id
        end
        else begin
          let at = Option.get arr in
          flush_samples st at;
          st.now <- at;
          incr next_id;
          let tenant = draw_tenant st !next_id in
          on_arrival st tenant;
          next_arrival :=
            at +. Rng.exponential st.rng ~mean:(1.0 /. cfg.arrival_rate)
        end
  done;
  final_checks st;
  let final_frag = observe_frag st in
  let samples = List.rev st.samples_rev in
  let mean over =
    match samples with
    | [] -> 0.0
    | _ ->
        List.fold_left (fun acc s -> acc +. over s) 0.0 samples
        /. float_of_int (List.length samples)
  in
  let cpu_util s =
    match
      List.find_opt (fun (r, k, _) -> r = "cpuMhz" && k = "node") s.s_utilization
    with
    | Some (_, _, u) -> u
    | None -> 0.0
  in
  {
    arrivals = st.n_arrivals;
    accepts = st.n_accepts;
    rejects = st.n_rejects;
    retry_accepts = st.n_retry_accepts;
    departures = st.n_departures;
    migrations = st.n_migrations;
    migration_failures = st.n_migration_failures;
    defrag_passes = st.n_defrag_passes;
    offered_revenue = st.offered;
    accepted_revenue = st.accepted;
    acceptance_rate =
      (if st.n_arrivals = 0 then 0.0
       else float_of_int st.n_accepts /. float_of_int st.n_arrivals);
    revenue_acceptance =
      (if st.offered <= 0.0 then 0.0 else st.accepted /. st.offered);
    final_fragmentation = final_frag;
    peak_fragmentation = st.peak_frag;
    mean_fragmentation = mean (fun s -> s.s_fragmentation);
    mean_cpu_utilization = mean cpu_util;
    invariant_violations = st.n_violations;
    samples;
    event_log = List.rev st.events;
  }

let summary cfg stats =
  let b = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  let pct num den = if den <= 0.0 then 0.0 else 100.0 *. num /. den in
  line "online churn simulation";
  line "  policy                %s" (policy_name cfg.policy);
  line "  seed                  %d" cfg.seed;
  line "  horizon               %g virtual s (rate %g/s)" cfg.horizon
    cfg.arrival_rate;
  line "  arrivals              %d" stats.arrivals;
  line "  accepted              %d (%.1f%%)" stats.accepts
    (pct (float_of_int stats.accepts) (float_of_int stats.arrivals));
  line "  rejected              %d" stats.rejects;
  line "  retry accepts         %d" stats.retry_accepts;
  line "  departures            %d" stats.departures;
  line "  migrations            %d (%d rolled back)" stats.migrations
    stats.migration_failures;
  line "  defrag passes         %d" stats.defrag_passes;
  line "  revenue acceptance    %.1f%%" (100.0 *. stats.revenue_acceptance);
  line "  mean cpu utilization  %.1f%%" (100.0 *. stats.mean_cpu_utilization);
  line "  peak fragmentation    %.4f" stats.peak_fragmentation;
  line "  mean fragmentation    %.4f" stats.mean_fragmentation;
  line "  final fragmentation   %.4f" stats.final_fragmentation;
  line "  invariant violations  %d" stats.invariant_violations;
  Buffer.contents b
