(** Online multi-tenant embedding simulation: the workload that looks
    like a real operator's day (ROADMAP item 4; "Online Graph Embedding
    in Star Graphs" is the theory anchor).

    A seeded, virtual-clock event-driven driver streams tenant arrivals
    (Poisson inter-arrivals) whose sizes follow a Zipf law over demand
    classes and whose holding times are bounded-Pareto heavy-tailed.
    Each arrival is submitted through {!Netembed_service.Service.submit}
    against the live residual model and, when an embedding exists,
    committed fractionally with
    {!Netembed_service.Service.allocate_shared}; the departure event at
    the end of the holding time frees the allocation — the online
    analogue of a schedule lease expiring.

    Admission policies:
    - {!Admit_greedy} places each tenant on the {e first} embedding the
      engine returns (first-fit) and never migrates;
    - {!No_defrag} picks the {e best-fit} embedding (tightest residual
      hosts) among the engine's candidates and never migrates;
    - {!Defrag_threshold} is best-fit plus a defragmentation pass: when
      a rejection occurs while the fragmentation index or the windowed
      rejection rate crosses its threshold, victim allocations
      (smallest-revenue or highest-blocking first) are re-searched on
      the residual graph with their own charges credited back and moved
      through the atomic {!Netembed_service.Service.migrate} — then the
      rejected tenant is retried once.

    Everything is deterministic in [(seed, config, substrate)]: the
    virtual clock, the draws, the engine's candidate order and the
    victim order are all replayable, which the deterministic-replay
    tests pin (same seed ⇒ identical {!stats.event_log}). *)

type policy = Admit_greedy | No_defrag | Defrag_threshold

val policy_name : policy -> string
(** ["admit_greedy"], ["no_defrag"], ["defrag_threshold"]. *)

val policy_of_string : string -> policy option
val all_policies : policy list

type victim_order =
  | Smallest_revenue
      (** cheapest tenants first — they fit almost anywhere *)
  | Highest_blocking
      (** tenants sitting on the loosest hosts first — moving them
          empties the biggest contiguous blocks *)

val victim_order_name : victim_order -> string
val victim_order_of_string : string -> victim_order option

type config = {
  seed : int;
  policy : policy;
  horizon : float;  (** virtual seconds during which tenants arrive *)
  arrival_rate : float;  (** mean tenant arrivals per virtual second *)
  hold_shape : float;  (** Pareto tail exponent of holding times *)
  hold_mean : float;  (** target mean holding time, virtual seconds *)
  hold_cap : float;  (** truncation bound on holding times *)
  size_classes : float array;  (** total cpuMhz demand per size class *)
  size_skew : float;  (** Zipf skew over [size_classes] (rank 1 = smallest) *)
  link_fraction : float;  (** share of tenants that are two-node + link *)
  bandwidth_per_cpu : float;  (** link demand = cpu demand × this *)
  candidates : int;  (** embeddings enumerated per search ([At_most]) *)
  frag_threshold : float;  (** defrag when fragmentation index ≥ this *)
  reject_threshold : float;  (** … or windowed rejection rate ≥ this *)
  reject_window : int;  (** trailing arrivals the rejection rate covers *)
  max_migrations : int;  (** migration attempts per defrag pass *)
  victim_order : victim_order;
  sample_every : float;  (** time-series sampling period, virtual seconds *)
  domains : int;  (** forwarded to {!Netembed_service.Service.create} *)
  inject_migration_failure : (int -> bool) option;
      (** test hook: when it returns [true] for the (1-based) global
          migration-attempt ordinal, that re-embed is forced to fail
          inside the ledger commit, exercising the rollback path *)
}

val default_config : config

type sample = {
  s_time : float;
  s_arrivals : int;
  s_accepts : int;
  s_rejects : int;
  s_active : int;  (** tenants holding an allocation at sample time *)
  s_fragmentation : float;  (** {!Netembed_ledger.Ledger.fragmentation_index} *)
  s_utilization : (string * string * float) list;
      (** (resource, ["node"]/["edge"], used/capacity) per tracked resource *)
}

type stats = {
  arrivals : int;
  accepts : int;  (** tenants admitted (including retries after defrag) *)
  rejects : int;  (** tenants turned away for good *)
  retry_accepts : int;  (** accepts that needed a defrag pass + retry *)
  departures : int;
  migrations : int;
  migration_failures : int;  (** attempts rolled back — victims intact *)
  defrag_passes : int;
  offered_revenue : float;  (** Σ cpu×hold over every arrival *)
  accepted_revenue : float;  (** Σ cpu×hold over admitted tenants *)
  acceptance_rate : float;
  revenue_acceptance : float;  (** accepted / offered revenue *)
  final_fragmentation : float;  (** after the last departure (usually 0) *)
  peak_fragmentation : float;
  mean_fragmentation : float;  (** mean over {!samples} *)
  mean_cpu_utilization : float;  (** mean node-cpu used/capacity over samples *)
  invariant_violations : int;
      (** nonzero when, after every tenant departed, the ledger did not
          restore bit-exactly (outstanding allocations, nonzero usage,
          or a mid-run over-commit) — must be 0 *)
  samples : sample list;  (** chronological *)
  event_log : string list;
      (** chronological, deterministically formatted — the replay
          fingerprint: byte-identical across runs of one seed *)
}

val run :
  ?registry:Netembed_telemetry.Telemetry.Registry.t ->
  config ->
  Netembed_graph.Graph.t ->
  stats
(** Drive the workload against a fresh service over [substrate] until
    the arrival horizon passes {e and} every admitted tenant has
    departed, then verify the ledger restored exactly.  [registry]
    (default: a fresh private one) receives the service metrics plus
    the simulator counters [netembed_sim_arrivals_total],
    [netembed_sim_accepts_total], [netembed_sim_rejects_total],
    [netembed_sim_departures_total], [netembed_sim_migrations_total],
    [netembed_sim_migration_failures_total],
    [netembed_sim_defrag_passes_total] and the
    [netembed_sim_fragmentation] gauge. *)

val summary : config -> stats -> string
(** The human-readable summary block [bin/netembed_sim] prints (and the
    cram test pins) — virtual-time figures only, so it is byte-stable
    across runs. *)
