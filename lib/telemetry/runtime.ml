(* Runtime introspection for the mapping service.

   Three independent pieces, all optional at runtime:

   - a sampler domain that polls [Gc.quick_stat] on a configurable
     interval and exports [netembed_gc_*] gauges into a registry —
     allocation rates (words/s between consecutive polls), collection
     counts, heap size and compactions;
   - cooperative per-domain allocation publishing: any domain may call
     {!publish_minor_words} to drop its own [Gc.minor_words] reading
     into a per-domain cell, which the sampler exports as
     [netembed_domain_minor_words{domain=...}] (Gc counters are
     per-domain in multicore OCaml, so the sampler cannot read them on
     behalf of other domains);
   - an allocation profiler over [Gc.Memprof] that aggregates sampled
     allocation sites and dumps folded-stack output (one
     [frame;frame;... count] line per site, flamegraph-ready).  The
     5.1 multicore runtime ships the Memprof interface but raises
     [Failure] from [start]; the profiler degrades to a marker sample
     so the dump is always present and parseable.

   Concurrency: the sampler slot is process-global and mutex-guarded;
   [start]/[stop]/[running] are idempotent and safe from any domain.
   The per-domain cells follow the repo's single-writer/racy-reader
   model (each domain writes only its own cell). *)

let max_domains = 128

(* cells.(i): last minor-words reading domain i published; live.(i)
   marks the cell as carrying data.  Single writer per cell (the owning
   domain), racy reader (the sampler). *)
let alloc_cells = Array.make max_domains 0.0
let alloc_live = Array.make max_domains false

let publish_minor_words () =
  let id = (Domain.self () :> int) in
  if id >= 0 && id < max_domains then begin
    alloc_cells.(id) <- Gc.minor_words ();
    alloc_live.(id) <- true
  end

type sampler = {
  registry : Telemetry.Registry.t;
  interval : float;
  lock : Mutex.t;
  mutable stop_flag : bool;  (* guarded by [lock] *)
  mutable thread : unit Domain.t option;
}

let slot : sampler option ref = ref None
let slot_lock = Mutex.create ()
let gc_help = "sampled from Gc.quick_stat by the runtime sampler domain"

(* One poll: refresh every gauge, return the readings the next poll
   rates against. *)
let sample registry ~prev_minor ~prev_major ~prev_t =
  let s = Gc.quick_stat () in
  let now = Unix.gettimeofday () in
  let g name = Telemetry.Registry.gauge registry ~help:gc_help name in
  let dt = now -. prev_t in
  if dt > 0.0 then begin
    Telemetry.Gauge.set
      (g "netembed_gc_minor_words_rate")
      ((s.Gc.minor_words -. prev_minor) /. dt);
    Telemetry.Gauge.set
      (g "netembed_gc_major_words_rate")
      ((s.Gc.major_words -. prev_major) /. dt)
  end;
  Telemetry.Gauge.set
    (g "netembed_gc_minor_collections")
    (float_of_int s.Gc.minor_collections);
  Telemetry.Gauge.set
    (g "netembed_gc_major_collections")
    (float_of_int s.Gc.major_collections);
  Telemetry.Gauge.set (g "netembed_gc_compactions")
    (float_of_int s.Gc.compactions);
  Telemetry.Gauge.set (g "netembed_gc_heap_words")
    (float_of_int s.Gc.heap_words);
  for i = 0 to max_domains - 1 do
    if alloc_live.(i) then
      Telemetry.Gauge.set
        (Telemetry.Registry.gauge registry
           ~help:"per-domain minor words, published by the domain itself"
           ~labels:[ ("domain", string_of_int i) ]
           "netembed_domain_minor_words")
        alloc_cells.(i)
  done;
  (s.Gc.minor_words, s.Gc.major_words, now)

let stopped sampler =
  Mutex.lock sampler.lock;
  let s = sampler.stop_flag in
  Mutex.unlock sampler.lock;
  s

let run sampler () =
  let rec loop prev_minor prev_major prev_t =
    (* Chunked sleep so [stop] never waits a full interval. *)
    let deadline = Unix.gettimeofday () +. sampler.interval in
    let rec wait () =
      if stopped sampler then true
      else
        let now = Unix.gettimeofday () in
        if now >= deadline then false
        else begin
          Unix.sleepf (Float.min 0.02 (deadline -. now));
          wait ()
        end
    in
    if not (wait ()) then begin
      let pm, pj, pt =
        sample sampler.registry ~prev_minor ~prev_major ~prev_t
      in
      loop pm pj pt
    end
  in
  (* Export the absolute gauges immediately so /metrics carries them
     without waiting one full interval; rates appear from poll two. *)
  let s = Gc.quick_stat () in
  let pm, pj, pt =
    sample sampler.registry ~prev_minor:s.Gc.minor_words
      ~prev_major:s.Gc.major_words ~prev_t:(Unix.gettimeofday ())
  in
  loop pm pj pt

let start ?(registry = Telemetry.default_registry) ?(interval = 1.0) () =
  if interval <= 0.0 then
    invalid_arg "Runtime.start: interval must be positive";
  Mutex.lock slot_lock;
  (match !slot with
  | Some _ -> ()  (* already running: idempotent *)
  | None ->
      let sampler =
        { registry; interval; lock = Mutex.create (); stop_flag = false;
          thread = None }
      in
      sampler.thread <- Some (Domain.spawn (run sampler));
      slot := Some sampler);
  Mutex.unlock slot_lock

let stop () =
  Mutex.lock slot_lock;
  let s = !slot in
  slot := None;
  Mutex.unlock slot_lock;
  match s with
  | None -> ()
  | Some sampler -> (
      Mutex.lock sampler.lock;
      sampler.stop_flag <- true;
      Mutex.unlock sampler.lock;
      match sampler.thread with Some d -> Domain.join d | None -> ())

let running () =
  Mutex.lock slot_lock;
  let r = match !slot with Some _ -> true | None -> false in
  Mutex.unlock slot_lock;
  r

module Alloc_profile = struct
  type status = Idle | Active | Unsupported

  let lock = Mutex.create ()
  let status = ref Idle
  let sites : (string, int) Hashtbl.t = Hashtbl.create 64

  let frames_of_callstack bt =
    match Printexc.backtrace_slots bt with
    | None -> [ "unknown" ]
    | Some slots ->
        let name slot =
          match Printexc.Slot.name slot with
          | Some n when n <> "" -> n
          | _ -> (
              match Printexc.Slot.location slot with
              | Some l ->
                  Printf.sprintf "%s:%d" l.Printexc.filename
                    l.Printexc.line_number
              | None -> "unknown")
        in
        (* Raw backtraces list the innermost frame first; folded stacks
           want outermost first. *)
        List.rev (Array.to_list (Array.map name slots))

  let record (alloc : Gc.Memprof.allocation) =
    let key =
      String.concat ";"
        ("netembed" :: frames_of_callstack alloc.Gc.Memprof.callstack)
    in
    Mutex.lock lock;
    let prev = Option.value ~default:0 (Hashtbl.find_opt sites key) in
    Hashtbl.replace sites key (prev + alloc.Gc.Memprof.n_samples);
    Mutex.unlock lock;
    None

  let tracker : (unit, unit) Gc.Memprof.tracker =
    {
      Gc.Memprof.alloc_minor = record;
      alloc_major = record;
      promote = (fun _ -> None);
      dealloc_minor = ignore;
      dealloc_major = ignore;
    }

  let start ?(sampling_rate = 1e-3) () =
    Mutex.lock lock;
    let st = !status in
    Mutex.unlock lock;
    match st with
    | Active | Unsupported -> ()
    | Idle -> (
        (* Never hold [lock] across Memprof.start: the callbacks take it
           and fire on allocation. *)
        try
          Gc.Memprof.start ~sampling_rate ~callstack_size:32 tracker;
          Mutex.lock lock;
          status := Active;
          Mutex.unlock lock
        with Failure _ ->
          (* 5.1 multicore: interface present, implementation absent. *)
          Mutex.lock lock;
          status := Unsupported;
          Mutex.unlock lock)

  let active () =
    Mutex.lock lock;
    let a = !status = Active in
    Mutex.unlock lock;
    a

  let supported () =
    Mutex.lock lock;
    let s = !status <> Unsupported in
    Mutex.unlock lock;
    s

  let stop () =
    if active () then Gc.Memprof.stop ();
    Mutex.lock lock;
    if !status = Active then status := Idle;
    Mutex.unlock lock

  let reset () =
    Mutex.lock lock;
    Hashtbl.reset sites;
    Mutex.unlock lock

  let dump_folded oc =
    Mutex.lock lock;
    let entries = Hashtbl.fold (fun k v acc -> (k, v) :: acc) sites [] in
    let unsupported = !status = Unsupported in
    Mutex.unlock lock;
    if entries = [] then
      output_string oc
        (if unsupported then "netembed;runtime;memprof_unavailable 1\n"
         else "netembed;runtime;no_samples 1\n")
    else
      List.iter
        (fun (k, v) -> Printf.fprintf oc "%s %d\n" k v)
        (List.sort (fun (a, _) (b, _) -> compare a b) entries)
end
