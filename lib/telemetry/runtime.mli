(** Runtime introspection: continuous GC sampling, cooperative
    per-domain allocation publishing, and an optional [Gc.Memprof]
    allocation profiler.

    The sampler is a dedicated domain polling [Gc.quick_stat] on a
    configurable interval and exporting gauges into a registry:

    - [netembed_gc_minor_words_rate] / [netembed_gc_major_words_rate]
      — allocation rate in words/s between consecutive polls;
    - [netembed_gc_minor_collections] / [netembed_gc_major_collections]
      / [netembed_gc_compactions] — lifetime collection counts;
    - [netembed_gc_heap_words] — major heap size;
    - [netembed_domain_minor_words{domain=...}] — the last reading each
      domain dropped via {!publish_minor_words} (Gc counters are
      per-domain in multicore OCaml, so domains must publish their
      own).

    The sampler slot is process-global: {!start}, {!stop} and
    {!running} are idempotent and safe from any domain, so a [Service]
    can be torn down and recreated without leaking sampler domains. *)

val start : ?registry:Telemetry.Registry.t -> ?interval:float -> unit -> unit
(** Start the sampler domain (no-op when already running).  [registry]
    defaults to {!Telemetry.default_registry}; [interval] (default
    1.0s) is the poll period.
    @raise Invalid_argument when [interval <= 0]. *)

val stop : unit -> unit
(** Stop and join the sampler domain (no-op when not running).  Stops
    promptly — the sampler sleeps in small chunks, never a full
    interval. *)

val running : unit -> bool

val publish_minor_words : unit -> unit
(** Record the calling domain's [Gc.minor_words] into its per-domain
    cell for the sampler to export.  Cheap enough to call once per
    request or per worker-loop iteration. *)

(** Allocation profiling over [Gc.Memprof], aggregated by call site
    and dumped as folded stacks (one [frame;frame;... count] line per
    site — pipe through [flamegraph.pl] or load into speedscope).

    OCaml 5.1's multicore runtime ships the Memprof interface but
    raises [Failure] from [Gc.Memprof.start]; {!start} catches this
    and degrades: {!supported} turns false and {!dump_folded} emits a
    single [netembed;runtime;memprof_unavailable 1] marker line, so
    the profile file is always present and parseable for CI
    artifacts. *)
module Alloc_profile : sig
  val start : ?sampling_rate:float -> unit -> unit
  (** Begin sampling allocations (default rate 1e-3 — roughly one
      sample per thousand words).  Idempotent; a no-op once the
      runtime has been detected as unsupported. *)

  val stop : unit -> unit
  (** Stop sampling; the aggregated sites are retained for
      {!dump_folded}. *)

  val active : unit -> bool
  val supported : unit -> bool

  val reset : unit -> unit
  (** Drop all aggregated sites. *)

  val dump_folded : out_channel -> unit
  (** Write the folded-stack profile, sites sorted by stack for
      deterministic output.  Always writes at least one line (a marker
      sample when no real samples exist). *)
end
