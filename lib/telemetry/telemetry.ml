(* Metrics kernel.  Everything here is allocation-free after creation:
   counters and gauges are single mutable cells, histogram observation
   is a table lookup plus a few stores, span enter/exit writes into a
   preallocated stack.  See telemetry.mli for the contract. *)

module Counter = struct
  type t = { mutable v : int }

  let make () = { v = 0 }
  let incr t = t.v <- t.v + 1

  let add t n =
    if n < 0 then invalid_arg "Telemetry.Counter.add: negative increment";
    t.v <- t.v + n

  let value t = t.v
  let reset t = t.v <- 0
  let merge_into ~dst src = dst.v <- dst.v + src.v
end

module Gauge = struct
  type t = { mutable g : float }

  let make () = { g = 0.0 }
  let set t v = t.g <- v
  let value t = t.g

  (* Last write wins, like [set]: at a parallel join the source (a
     worker domain's registry) holds the most recent reading. *)
  let merge_into ~dst src = dst.g <- src.g
end

(* The quantile set every exposition reports — one constant shared by
   the lifetime histogram JSON and the windowed summaries so the two
   cannot drift.  Each entry is (quantile, JSON key). *)
let report_quantiles = [| (0.50, "p50"); (0.95, "p95"); (0.99, "p99") |]

module Histogram = struct
  (* Global bucket layout: inclusive upper bounds growing by
     max(+1, x6/5), i.e. exact up to 10 and ~base-1.2 beyond, with a
     catch-all max_int bucket.  Computed once at module init so every
     histogram is one int array over the same layout and merging is
     element-wise. *)
  let uppers =
    let acc = ref [ 0 ] in
    let u = ref 0 in
    (* Grow while u * 6 cannot overflow; the catch-all max_int bucket
       covers the rest. *)
    while !u <= max_int / 6 do
      u := max (!u + 1) (!u * 6 / 5);
      acc := !u :: !acc
    done;
    Array.of_list (List.rev (max_int :: !acc))

  let bucket_count = Array.length uppers

  let bucket_upper i =
    if i < 0 || i >= bucket_count then invalid_arg "Telemetry.Histogram.bucket_upper";
    uppers.(i)

  (* Hot-path index: a direct table for small values (search depths and
     candidate-domain sizes are far below 4096), binary search above. *)
  let small_limit = 4096

  let small_index =
    let t = Array.make (small_limit + 1) 0 in
    let b = ref 0 in
    for v = 1 to small_limit do
      if v > uppers.(!b) then incr b;
      t.(v) <- !b
    done;
    t

  let bucket_index v =
    if v <= 0 then 0
    else if v <= small_limit then Array.unsafe_get small_index v
    else begin
      (* First bucket whose upper bound admits v. *)
      let lo = ref 0 and hi = ref (bucket_count - 1) in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        if uppers.(mid) >= v then hi := mid else lo := mid + 1
      done;
      !lo
    end

  type t = {
    buckets : int array;
    mutable count : int;
    mutable sum : int;
    mutable max_o : int;
  }

  let make () = { buckets = Array.make bucket_count 0; count = 0; sum = 0; max_o = 0 }

  let observe t v =
    let v = if v < 0 then 0 else v in
    let i = bucket_index v in
    Array.unsafe_set t.buckets i (Array.unsafe_get t.buckets i + 1);
    t.count <- t.count + 1;
    t.sum <- t.sum + v;
    if v > t.max_o then t.max_o <- v

  let observe_n t v n =
    if n < 0 then invalid_arg "Telemetry.Histogram.observe_n";
    if n > 0 then begin
      let v = if v < 0 then 0 else v in
      let i = bucket_index v in
      Array.unsafe_set t.buckets i (Array.unsafe_get t.buckets i + n);
      t.count <- t.count + n;
      t.sum <- t.sum + (v * n);
      if v > t.max_o then t.max_o <- v
    end

  let count t = t.count
  let sum t = t.sum
  let max_observed t = t.max_o

  let bucket_value t i =
    if i < 0 || i >= bucket_count then invalid_arg "Telemetry.Histogram.bucket_value";
    t.buckets.(i)

  let quantile t q =
    if q < 0.0 || q > 1.0 then invalid_arg "Telemetry.Histogram.quantile";
    if t.count = 0 then 0.0
    else begin
      (* Nearest-rank, as Stats.percentile: rank in [0, count-1]. *)
      let rank = int_of_float (Float.round (q *. float_of_int (t.count - 1))) in
      let i = ref 0 and cum = ref t.buckets.(0) in
      while !cum <= rank && !i < bucket_count - 1 do
        incr i;
        cum := !cum + t.buckets.(!i)
      done;
      float_of_int uppers.(!i)
    end

  let reset t =
    Array.fill t.buckets 0 bucket_count 0;
    t.count <- 0;
    t.sum <- 0;
    t.max_o <- 0

  let copy t =
    { buckets = Array.copy t.buckets; count = t.count; sum = t.sum; max_o = t.max_o }

  let merge_into ~dst src =
    for i = 0 to bucket_count - 1 do
      dst.buckets.(i) <- dst.buckets.(i) + src.buckets.(i)
    done;
    dst.count <- dst.count + src.count;
    dst.sum <- dst.sum + src.sum;
    if src.max_o > dst.max_o then dst.max_o <- src.max_o

  let fold_nonzero f t acc =
    let acc = ref acc in
    for i = 0 to bucket_count - 1 do
      if t.buckets.(i) > 0 then acc := f uppers.(i) t.buckets.(i) !acc
    done;
    !acc
end

module Span = struct
  let max_depth = 64

  (* Entries past the preallocated stack are not recorded; they must
     not vanish silently either, so the overflow branch counts them
     here and the default registry exposes the cell below. *)
  let drops = Counter.make ()
  let dropped () = Counter.value drops

  type state = {
    mutable out : out_channel option;
    mutable t0 : float;
    mutable depth : int;
    mutable sample_every : int;
    mutable events : int;
    names : string array;
    starts : float array;
  }

  let st =
    {
      out = None;
      t0 = 0.0;
      depth = 0;
      sample_every = 1;
      events = 0;
      names = Array.make max_depth "";
      starts = Array.make max_depth 0.0;
    }

  let enable oc =
    st.out <- Some oc;
    st.t0 <- Unix.gettimeofday ();
    st.depth <- 0;
    st.events <- 0

  let disable () =
    (match st.out with Some oc -> flush oc | None -> ());
    st.out <- None;
    st.depth <- 0

  let enabled () = st.out <> None

  let set_sample_every n =
    if n < 1 then invalid_arg "Telemetry.Span.set_sample_every";
    st.sample_every <- n

  let now_us () = (Unix.gettimeofday () -. st.t0) *. 1e6

  (* Span names come from code, not user input, but escape the two JSON
     metacharacters anyway so a stray quote cannot corrupt the log. *)
  let escape s =
    if String.exists (fun c -> c = '"' || c = '\\') s then
      String.concat ""
        (List.map
           (function '"' -> "\\\"" | '\\' -> "\\\\" | c -> String.make 1 c)
           (List.init (String.length s) (String.get s)))
    else s

  let enter name =
    match st.out with
    | None -> ()
    | Some oc ->
        let d = st.depth in
        st.depth <- d + 1;
        if d < max_depth then begin
          let t = now_us () in
          st.names.(d) <- name;
          st.starts.(d) <- t;
          Printf.fprintf oc "{\"ev\":\"enter\",\"span\":\"%s\",\"depth\":%d,\"t_us\":%.0f}\n"
            (escape name) d t
        end
        else Counter.incr drops

  let exit () =
    match st.out with
    | None -> ()
    | Some oc ->
        if st.depth > 0 then begin
          let d = st.depth - 1 in
          st.depth <- d;
          if d < max_depth then begin
            let t = now_us () in
            Printf.fprintf oc
              "{\"ev\":\"exit\",\"span\":\"%s\",\"depth\":%d,\"t_us\":%.0f,\"dur_us\":%.0f}\n"
              (escape st.names.(d)) d t
              (t -. st.starts.(d))
          end
        end

  let event name =
    match st.out with
    | None -> ()
    | Some oc ->
        st.events <- st.events + 1;
        if st.events mod st.sample_every = 0 then
          Printf.fprintf oc "{\"ev\":\"event\",\"name\":\"%s\",\"t_us\":%.0f}\n"
            (escape name) (now_us ())

  let with_span name f =
    enter name;
    Fun.protect ~finally:exit f
end

module Phase = struct
  (* The fixed decomposition of one mapping request.  Indices are the
     layout of [snapshot.phases] and of the service's per-phase
     accumulators, so the order here is load-bearing: new phases are
     appended (Queue_wait sits after Encode even though it happens
     first in wall-clock order) so existing indices never move. *)
  type t =
    | Parse
    | Admission
    | Cache_lookup
    | Filter_build
    | Compile
    | Search
    | Ledger_commit
    | Encode
    | Queue_wait

  let all =
    [|
      Parse; Admission; Cache_lookup; Filter_build; Compile; Search;
      Ledger_commit; Encode; Queue_wait;
    |]

  let count = Array.length all

  let index = function
    | Parse -> 0
    | Admission -> 1
    | Cache_lookup -> 2
    | Filter_build -> 3
    | Compile -> 4
    | Search -> 5
    | Ledger_commit -> 6
    | Encode -> 7
    | Queue_wait -> 8

  let name = function
    | Parse -> "parse"
    | Admission -> "admission"
    | Cache_lookup -> "cache_lookup"
    | Filter_build -> "filter_build"
    | Compile -> "compile"
    | Search -> "search"
    | Ledger_commit -> "ledger_commit"
    | Encode -> "encode"
    | Queue_wait -> "queue_wait"

  let of_index i =
    if i < 0 || i >= count then invalid_arg "Telemetry.Phase.of_index";
    all.(i)

  let make_timings () = Array.make count 0.0
end

module Trace = struct
  (* Request-scoped tracing.  Unlike [Span] (one process-global JSONL
     stream), a trace buffer belongs to one request: the service
     allocates it at submit, the engine and every parallel worker
     append complete spans, and the merged buffer serializes to Chrome
     trace_event JSON.  Buffers are single-writer; workers record into
     their own buffer (tid = worker index) and the owner merges at
     join, so no synchronization is needed. *)

  (* Trace ids are process-global and handed out with one atomic
     fetch-and-add so concurrent dispatchers can stamp requests without
     coordination.  Id 0 is reserved for "not traced". *)
  let next_id = Atomic.make 1
  let fresh_id () = Atomic.fetch_and_add next_id 1

  type event = { name : string; tid : int; start_us : float; dur_us : float }

  type buffer = {
    mutable events : event array;
    mutable len : int;
    default_tid : int;
  }

  let dummy_event = { name = ""; tid = 0; start_us = 0.0; dur_us = 0.0 }

  let create ?(tid = 0) () =
    { events = Array.make 64 dummy_event; len = 0; default_tid = tid }

  let length b = b.len

  (* Absolute microseconds, identical across domains, so spans recorded
     on different workers line up on one timeline. *)
  let now_us () = Unix.gettimeofday () *. 1e6

  let add ?tid b ~name ~start_us ~dur_us =
    let tid = match tid with Some t -> t | None -> b.default_tid in
    if b.len = Array.length b.events then begin
      let bigger = Array.make (2 * b.len) dummy_event in
      Array.blit b.events 0 bigger 0 b.len;
      b.events <- bigger
    end;
    b.events.(b.len) <- { name; tid; start_us; dur_us };
    b.len <- b.len + 1

  let span b name f =
    let t0 = now_us () in
    Fun.protect f ~finally:(fun () ->
        add b ~name ~start_us:t0 ~dur_us:(now_us () -. t0))

  let span_opt b name f =
    match b with None -> f () | Some b -> span b name f

  let merge_into ~dst src =
    for i = 0 to src.len - 1 do
      let e = src.events.(i) in
      add dst ~tid:e.tid ~name:e.name ~start_us:e.start_us ~dur_us:e.dur_us
    done

  let iter f b =
    for i = 0 to b.len - 1 do
      let e = b.events.(i) in
      f ~name:e.name ~tid:e.tid ~start_us:e.start_us ~dur_us:e.dur_us
    done

  let to_chrome_json ?(trace_id = 0) b =
    (* Complete ("ph":"X") events; [ts] is shifted to the earliest
       event so viewers aren't handed epoch-sized timestamps.  Nesting
       falls out of ts/dur containment per (pid, tid). *)
    let t0 = ref infinity in
    for i = 0 to b.len - 1 do
      if b.events.(i).start_us < !t0 then t0 := b.events.(i).start_us
    done;
    let t0 = if b.len = 0 then 0.0 else !t0 in
    let buf = Buffer.create 512 in
    Buffer.add_string buf "{\"traceEvents\":[";
    for i = 0 to b.len - 1 do
      let e = b.events.(i) in
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "{\"name\":\"%s\",\"cat\":\"netembed\",\"ph\":\"X\",\"ts\":%.1f,\"dur\":%.1f,\"pid\":%d,\"tid\":%d,\"args\":{\"trace_id\":%d}}"
           (Span.escape e.name)
           (e.start_us -. t0)
           e.dur_us trace_id e.tid trace_id)
    done;
    Buffer.add_string buf "]}";
    Buffer.contents buf
end

module Windowed = struct
  (* A sliding-window histogram: a ring of [Histogram.t] slices, each
     covering [window / slices] seconds of a coarse clock.  Observation
     lands in the slice for the current absolute slice number; slices
     whose stamp has fallen out of the window are cleared lazily on the
     next touch, so rotation costs nothing when idle.  Reads merge the
     live slices into a scratch histogram. *)

  type t = {
    slices : Histogram.t array;
    stamps : int array;  (* absolute slice number per slot; -1 = never used *)
    slice_span : float;
    window_s : float;
    clock : unit -> float;
    scale : float;  (* multiplier applied to values at render time *)
    merged_scratch : Histogram.t;
  }

  let create ?(clock = Unix.gettimeofday) ?(scale = 1.0) ~window ~slices () =
    if slices < 1 then invalid_arg "Telemetry.Windowed.create: slices < 1";
    if window <= 0.0 then invalid_arg "Telemetry.Windowed.create: window <= 0";
    {
      slices = Array.init slices (fun _ -> Histogram.make ());
      stamps = Array.make slices (-1);
      slice_span = window /. float_of_int slices;
      window_s = window;
      clock;
      scale;
      merged_scratch = Histogram.make ();
    }

  let slice_count t = Array.length t.slices
  let window t = t.window_s
  let scale t = t.scale
  let clock t = t.clock

  let abs_slice t = int_of_float (t.clock () /. t.slice_span)

  (* The histogram slot for absolute slice [s], recycled (reset and
     restamped) if it still holds an expired slice. *)
  let slot t s =
    let i = s mod Array.length t.slices in
    if t.stamps.(i) <> s then begin
      Histogram.reset t.slices.(i);
      t.stamps.(i) <- s
    end;
    t.slices.(i)

  let observe t v = Histogram.observe (slot t (abs_slice t)) v

  (* Merge every slice still inside the window into the scratch
     histogram.  The result is valid until the next [merged] call on
     the same value. *)
  let merged t =
    let now = abs_slice t in
    let n = Array.length t.slices in
    Histogram.reset t.merged_scratch;
    for i = 0 to n - 1 do
      let s = t.stamps.(i) in
      if s >= 0 && now - s < n then
        Histogram.merge_into ~dst:t.merged_scratch t.slices.(i)
    done;
    t.merged_scratch

  let count t = Histogram.count (merged t)
  let quantile t q = Histogram.quantile (merged t) q *. t.scale

  let merge_into ~dst src =
    if
      Array.length dst.slices <> Array.length src.slices
      || dst.slice_span <> src.slice_span
    then invalid_arg "Telemetry.Windowed.merge_into: mismatched window geometry";
    let now = abs_slice src in
    let n = Array.length src.slices in
    for i = 0 to n - 1 do
      let s = src.stamps.(i) in
      if s >= 0 && now - s < n then
        Histogram.merge_into ~dst:(slot dst s) src.slices.(i)
    done
end

module Registry = struct
  type metric =
    | Counter of Counter.t
    | Gauge of Gauge.t
    | Histogram of Histogram.t
    | Windowed of Windowed.t

  type entry = { name : string; labels : (string * string) list; help : string; metric : metric }

  type t = {
    by_key : (string, entry) Hashtbl.t;
    mutable order : string list;  (** registration order, newest first *)
    (* Registration, enumeration and cross-registry merges mutate the
       name table and must be safe from any domain: the concurrent
       front-end registers label variants (unsat causes, per-phase
       series) lazily from worker domains.  Metric *updates* stay
       lock-free single-writer/racy-reader as before — the lock only
       guards the table and whole-merge atomicity. *)
    lock : Mutex.t;
  }

  let create () = { by_key = Hashtbl.create 32; order = []; lock = Mutex.create () }

  let locked t f =
    Mutex.lock t.lock;
    Fun.protect f ~finally:(fun () -> Mutex.unlock t.lock)

  let valid_name n =
    n <> ""
    && (match n.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true | _ -> false)
    && String.for_all
         (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true | _ -> false)
         n

  let escape_label v =
    String.concat ""
      (List.map
         (function
           | '"' -> "\\\"" | '\\' -> "\\\\" | '\n' -> "\\n" | c -> String.make 1 c)
         (List.init (String.length v) (String.get v)))

  let render_labels = function
    | [] -> ""
    | labels ->
        "{"
        ^ String.concat ","
            (List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label v)) labels)
        ^ "}"

  let key name labels = name ^ render_labels labels

  (* The table lookup/insert itself, callable with [t.lock] already
     held (the merge loop) or not (the public accessors). *)
  let register_unlocked t ?(help = "") ?(labels = []) name build describe =
    if not (valid_name name) then
      invalid_arg (Printf.sprintf "Telemetry.Registry: bad metric name %S" name);
    List.iter
      (fun (k, _) ->
        if not (valid_name k) then
          invalid_arg (Printf.sprintf "Telemetry.Registry: bad label name %S" k))
      labels;
    let labels = List.sort compare labels in
    let k = key name labels in
    match Hashtbl.find_opt t.by_key k with
    | Some e -> describe e.metric
    | None ->
        let metric = build () in
        Hashtbl.replace t.by_key k { name; labels; help; metric };
        t.order <- k :: t.order;
        describe metric

  let register t ?help ?labels name build describe =
    locked t (fun () -> register_unlocked t ?help ?labels name build describe)

  let counter t ?help ?labels name =
    register t ?help ?labels name
      (fun () -> Counter (Counter.make ()))
      (function
        | Counter c -> c
        | _ -> invalid_arg ("Telemetry.Registry: " ^ name ^ " is not a counter"))

  let gauge t ?help ?labels name =
    register t ?help ?labels name
      (fun () -> Gauge (Gauge.make ()))
      (function
        | Gauge g -> g
        | _ -> invalid_arg ("Telemetry.Registry: " ^ name ^ " is not a gauge"))

  let histogram t ?help ?labels name =
    register t ?help ?labels name
      (fun () -> Histogram (Histogram.make ()))
      (function
        | Histogram h -> h
        | _ -> invalid_arg ("Telemetry.Registry: " ^ name ^ " is not a histogram"))

  let windowed t ?help ?labels ?clock ?scale ~window ~slices name =
    register t ?help ?labels name
      (fun () -> Windowed (Windowed.create ?clock ?scale ~window ~slices ()))
      (function
        | Windowed w -> w
        | _ ->
            invalid_arg
              ("Telemetry.Registry: " ^ name ^ " is not a windowed histogram"))

  let entries t =
    locked t (fun () -> List.rev_map (fun k -> Hashtbl.find t.by_key k) t.order)

  (* Snapshot the source under its own lock, then apply under the
     destination's — never holding both, so two registries can merge
     into each other without deadlock.  Holding [dst.lock] across the
     whole loop makes each merge atomic with respect to other merges:
     two worker joins adding into the same destination counter cannot
     lose an update. *)
  let merge_into ~dst src =
    let src_entries = entries src in
    locked dst (fun () ->
        List.iter
          (fun e ->
            let unlocked describe build =
              register_unlocked dst ~help:e.help ~labels:e.labels e.name build
                describe
            in
            match e.metric with
            | Counter c ->
                Counter.merge_into
                  ~dst:
                    (unlocked
                       (function
                         | Counter c -> c
                         | _ ->
                             invalid_arg
                               ("Telemetry.Registry: " ^ e.name ^ " is not a counter"))
                       (fun () -> Counter (Counter.make ())))
                  c
            | Gauge g ->
                Gauge.merge_into
                  ~dst:
                    (unlocked
                       (function
                         | Gauge g -> g
                         | _ ->
                             invalid_arg
                               ("Telemetry.Registry: " ^ e.name ^ " is not a gauge"))
                       (fun () -> Gauge (Gauge.make ())))
                  g
            | Histogram h ->
                Histogram.merge_into
                  ~dst:
                    (unlocked
                       (function
                         | Histogram h -> h
                         | _ ->
                             invalid_arg
                               ("Telemetry.Registry: " ^ e.name
                              ^ " is not a histogram"))
                       (fun () -> Histogram (Histogram.make ())))
                  h
            | Windowed w ->
                Windowed.merge_into
                  ~dst:
                    (unlocked
                       (function
                         | Windowed w -> w
                         | _ ->
                             invalid_arg
                               ("Telemetry.Registry: " ^ e.name
                              ^ " is not a windowed histogram"))
                       (fun () ->
                         Windowed
                           (Windowed.create ~clock:(Windowed.clock w)
                              ~scale:(Windowed.scale w) ~window:(Windowed.window w)
                              ~slices:(Windowed.slice_count w) ())))
                  w)
          src_entries)

  (* Prometheus text format 0.0.4.  All samples of a metric family must
     form one contiguous block, so entries are grouped by name (in
     first-registration order) with HELP/TYPE emitted once per name —
     label variants share the header. *)
  let to_prometheus t =
    let buf = Buffer.create 1024 in
    let all = entries t in
    let names =
      List.fold_left
        (fun acc e -> if List.mem e.name acc then acc else e.name :: acc)
        [] all
      |> List.rev
    in
    let grouped =
      List.concat_map (fun n -> List.filter (fun e -> e.name = n) all) names
    in
    let seen_header = Hashtbl.create 16 in
    let header e kind =
      if not (Hashtbl.mem seen_header e.name) then begin
        Hashtbl.replace seen_header e.name ();
        if e.help <> "" then Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" e.name e.help);
        Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" e.name kind)
      end
    in
    List.iter
      (fun e ->
        match e.metric with
        | Counter c ->
            header e "counter";
            Buffer.add_string buf
              (Printf.sprintf "%s%s %d\n" e.name (render_labels e.labels) (Counter.value c))
        | Gauge g ->
            header e "gauge";
            Buffer.add_string buf
              (Printf.sprintf "%s%s %.17g\n" e.name (render_labels e.labels) (Gauge.value g))
        | Histogram h ->
            header e "histogram";
            let with_le le =
              render_labels (List.sort compare (("le", le) :: e.labels))
            in
            let cum = ref 0 in
            Histogram.fold_nonzero
              (fun upper occupancy () ->
                cum := !cum + occupancy;
                if upper < max_int then
                  Buffer.add_string buf
                    (Printf.sprintf "%s_bucket%s %d\n" e.name (with_le (string_of_int upper)) !cum))
              h ();
            Buffer.add_string buf
              (Printf.sprintf "%s_bucket%s %d\n" e.name (with_le "+Inf") (Histogram.count h));
            Buffer.add_string buf
              (Printf.sprintf "%s_sum%s %d\n" e.name (render_labels e.labels) (Histogram.sum h));
            Buffer.add_string buf
              (Printf.sprintf "%s_count%s %d\n" e.name (render_labels e.labels)
                 (Histogram.count h))
        | Windowed w ->
            (* A windowed histogram renders as a Prometheus summary:
               pre-computed quantiles over the sliding window, values
               scaled by the render multiplier (e.g. µs -> s). *)
            header e "summary";
            let m = Windowed.merged w in
            let sc = Windowed.scale w in
            Array.iter
              (fun (q, _) ->
                Buffer.add_string buf
                  (Printf.sprintf "%s%s %.9g\n" e.name
                     (render_labels
                        (List.sort compare
                           (("quantile", Printf.sprintf "%g" q) :: e.labels)))
                     (Histogram.quantile m q *. sc)))
              report_quantiles;
            Buffer.add_string buf
              (Printf.sprintf "%s_sum%s %.9g\n" e.name (render_labels e.labels)
                 (float_of_int (Histogram.sum m) *. sc));
            Buffer.add_string buf
              (Printf.sprintf "%s_count%s %d\n" e.name (render_labels e.labels)
                 (Histogram.count m)))
      grouped;
    Buffer.contents buf

  let histogram_json h =
    let buckets =
      List.rev
        (Histogram.fold_nonzero
           (fun upper occupancy acc ->
             Printf.sprintf "[%s,%d]"
               (if upper = max_int then "\"+Inf\"" else string_of_int upper)
               occupancy
             :: acc)
           h [])
    in
    let quantiles =
      String.concat ","
        (Array.to_list
           (Array.map
              (fun (q, key) ->
                Printf.sprintf "\"%s\":%.0f" key (Histogram.quantile h q))
              report_quantiles))
    in
    Printf.sprintf "{\"count\":%d,\"sum\":%d,\"max\":%d,%s,\"buckets\":[%s]}"
      (Histogram.count h) (Histogram.sum h) (Histogram.max_observed h)
      quantiles
      (String.concat "," buckets)

  let windowed_json w =
    let m = Windowed.merged w in
    let sc = Windowed.scale w in
    let quantiles =
      String.concat ","
        (Array.to_list
           (Array.map
              (fun (q, key) ->
                Printf.sprintf "\"%s\":%.9g" key (Histogram.quantile m q *. sc))
              report_quantiles))
    in
    Printf.sprintf "{\"count\":%d,\"sum\":%.9g,%s,\"window_s\":%g}"
      (Histogram.count m)
      (float_of_int (Histogram.sum m) *. sc)
      quantiles (Windowed.window w)

  let to_json t =
    let fields =
      List.map
        (fun e ->
          let k = escape_label (key e.name e.labels) in
          match e.metric with
          | Counter c -> Printf.sprintf "\"%s\":%d" k (Counter.value c)
          | Gauge g -> Printf.sprintf "\"%s\":%.17g" k (Gauge.value g)
          | Histogram h -> Printf.sprintf "\"%s\":%s" k (histogram_json h)
          | Windowed w -> Printf.sprintf "\"%s\":%s" k (windowed_json w))
        (entries t)
    in
    "{" ^ String.concat "," fields ^ "}"
end

let default_registry = Registry.create ()

let () =
  Registry.register default_registry
    ~help:"Span-stack entries dropped past the preallocated depth limit"
    "netembed_spans_dropped_total"
    (fun () -> Registry.Counter Span.drops)
    (fun _ -> ())

type snapshot = {
  algorithm : string;
  outcome : string;
      (** "complete" (space exhausted), "unsat" (complete with zero
          mappings: proved infeasible), "partial" / "exhausted" (budget
          or timeout hit — gave up, nothing proved) *)
  visited : int;
  found : int;
  elapsed_s : float;
  time_to_first_s : float option;
  constraint_evals : int;
  domains_built : int;
  intersections : int;
  backtracks : int;
  max_depth : int;
  depth_histogram : Histogram.t;
  domain_size_histogram : Histogram.t;
  phases : float array;
}

(* Render a [Phase.count]-length timings array as one JSON object,
   phases in canonical order.  Tolerates shorter arrays (missing
   phases read as absent, not 0) so partially-filled snapshots from
   lower layers stay valid. *)
let phases_to_json phases =
  let fields = ref [] in
  for i = Array.length phases - 1 downto 0 do
    if i < Phase.count then
      fields :=
        Printf.sprintf "\"%s\":%.6f" (Phase.name (Phase.of_index i)) phases.(i)
        :: !fields
  done;
  "{" ^ String.concat "," !fields ^ "}"

let snapshot_to_json s =
  Printf.sprintf
    "{\"algorithm\":\"%s\",\"outcome\":\"%s\",\"visited\":%d,\"found\":%d,\"elapsed_s\":%.6f,%s\"constraint_evals\":%d,\"domains_built\":%d,\"intersections\":%d,\"backtracks\":%d,\"max_depth\":%d,\"phases\":%s,\"depth_histogram\":%s,\"domain_size_histogram\":%s}"
    s.algorithm s.outcome s.visited s.found s.elapsed_s
    (match s.time_to_first_s with
    | None -> ""
    | Some t -> Printf.sprintf "\"time_to_first_s\":%.6f," t)
    s.constraint_evals s.domains_built s.intersections s.backtracks s.max_depth
    (phases_to_json s.phases)
    (Registry.histogram_json s.depth_histogram)
    (Registry.histogram_json s.domain_size_histogram)

let pp_snapshot ppf s =
  Format.fprintf ppf
    "%s: outcome=%s visited=%d found=%d elapsed=%.3fs evals=%d domains=%d \
     intersections=%d backtracks=%d max_depth=%d"
    s.algorithm s.outcome s.visited s.found s.elapsed_s s.constraint_evals
    s.domains_built s.intersections s.backtracks s.max_depth
