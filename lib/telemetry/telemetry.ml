(* Metrics kernel.  Everything here is allocation-free after creation:
   counters and gauges are single mutable cells, histogram observation
   is a table lookup plus a few stores, span enter/exit writes into a
   preallocated stack.  See telemetry.mli for the contract. *)

module Counter = struct
  type t = { mutable v : int }

  let make () = { v = 0 }
  let incr t = t.v <- t.v + 1

  let add t n =
    if n < 0 then invalid_arg "Telemetry.Counter.add: negative increment";
    t.v <- t.v + n

  let value t = t.v
  let reset t = t.v <- 0
  let merge_into ~dst src = dst.v <- dst.v + src.v
end

module Gauge = struct
  type t = { mutable g : float }

  let make () = { g = 0.0 }
  let set t v = t.g <- v
  let value t = t.g
end

module Histogram = struct
  (* Global bucket layout: inclusive upper bounds growing by
     max(+1, x6/5), i.e. exact up to 10 and ~base-1.2 beyond, with a
     catch-all max_int bucket.  Computed once at module init so every
     histogram is one int array over the same layout and merging is
     element-wise. *)
  let uppers =
    let acc = ref [ 0 ] in
    let u = ref 0 in
    (* Grow while u * 6 cannot overflow; the catch-all max_int bucket
       covers the rest. *)
    while !u <= max_int / 6 do
      u := max (!u + 1) (!u * 6 / 5);
      acc := !u :: !acc
    done;
    Array.of_list (List.rev (max_int :: !acc))

  let bucket_count = Array.length uppers

  let bucket_upper i =
    if i < 0 || i >= bucket_count then invalid_arg "Telemetry.Histogram.bucket_upper";
    uppers.(i)

  (* Hot-path index: a direct table for small values (search depths and
     candidate-domain sizes are far below 4096), binary search above. *)
  let small_limit = 4096

  let small_index =
    let t = Array.make (small_limit + 1) 0 in
    let b = ref 0 in
    for v = 1 to small_limit do
      if v > uppers.(!b) then incr b;
      t.(v) <- !b
    done;
    t

  let bucket_index v =
    if v <= 0 then 0
    else if v <= small_limit then Array.unsafe_get small_index v
    else begin
      (* First bucket whose upper bound admits v. *)
      let lo = ref 0 and hi = ref (bucket_count - 1) in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        if uppers.(mid) >= v then hi := mid else lo := mid + 1
      done;
      !lo
    end

  type t = {
    buckets : int array;
    mutable count : int;
    mutable sum : int;
    mutable max_o : int;
  }

  let make () = { buckets = Array.make bucket_count 0; count = 0; sum = 0; max_o = 0 }

  let observe t v =
    let v = if v < 0 then 0 else v in
    let i = bucket_index v in
    Array.unsafe_set t.buckets i (Array.unsafe_get t.buckets i + 1);
    t.count <- t.count + 1;
    t.sum <- t.sum + v;
    if v > t.max_o then t.max_o <- v

  let observe_n t v n =
    if n < 0 then invalid_arg "Telemetry.Histogram.observe_n";
    if n > 0 then begin
      let v = if v < 0 then 0 else v in
      let i = bucket_index v in
      Array.unsafe_set t.buckets i (Array.unsafe_get t.buckets i + n);
      t.count <- t.count + n;
      t.sum <- t.sum + (v * n);
      if v > t.max_o then t.max_o <- v
    end

  let count t = t.count
  let sum t = t.sum
  let max_observed t = t.max_o

  let bucket_value t i =
    if i < 0 || i >= bucket_count then invalid_arg "Telemetry.Histogram.bucket_value";
    t.buckets.(i)

  let quantile t q =
    if q < 0.0 || q > 1.0 then invalid_arg "Telemetry.Histogram.quantile";
    if t.count = 0 then 0.0
    else begin
      (* Nearest-rank, as Stats.percentile: rank in [0, count-1]. *)
      let rank = int_of_float (Float.round (q *. float_of_int (t.count - 1))) in
      let i = ref 0 and cum = ref t.buckets.(0) in
      while !cum <= rank && !i < bucket_count - 1 do
        incr i;
        cum := !cum + t.buckets.(!i)
      done;
      float_of_int uppers.(!i)
    end

  let reset t =
    Array.fill t.buckets 0 bucket_count 0;
    t.count <- 0;
    t.sum <- 0;
    t.max_o <- 0

  let copy t =
    { buckets = Array.copy t.buckets; count = t.count; sum = t.sum; max_o = t.max_o }

  let merge_into ~dst src =
    for i = 0 to bucket_count - 1 do
      dst.buckets.(i) <- dst.buckets.(i) + src.buckets.(i)
    done;
    dst.count <- dst.count + src.count;
    dst.sum <- dst.sum + src.sum;
    if src.max_o > dst.max_o then dst.max_o <- src.max_o

  let fold_nonzero f t acc =
    let acc = ref acc in
    for i = 0 to bucket_count - 1 do
      if t.buckets.(i) > 0 then acc := f uppers.(i) t.buckets.(i) !acc
    done;
    !acc
end

module Span = struct
  let max_depth = 64

  (* Entries past the preallocated stack are not recorded; they must
     not vanish silently either, so the overflow branch counts them
     here and the default registry exposes the cell below. *)
  let drops = Counter.make ()
  let dropped () = Counter.value drops

  type state = {
    mutable out : out_channel option;
    mutable t0 : float;
    mutable depth : int;
    mutable sample_every : int;
    mutable events : int;
    names : string array;
    starts : float array;
  }

  let st =
    {
      out = None;
      t0 = 0.0;
      depth = 0;
      sample_every = 1;
      events = 0;
      names = Array.make max_depth "";
      starts = Array.make max_depth 0.0;
    }

  let enable oc =
    st.out <- Some oc;
    st.t0 <- Unix.gettimeofday ();
    st.depth <- 0;
    st.events <- 0

  let disable () =
    (match st.out with Some oc -> flush oc | None -> ());
    st.out <- None;
    st.depth <- 0

  let enabled () = st.out <> None

  let set_sample_every n =
    if n < 1 then invalid_arg "Telemetry.Span.set_sample_every";
    st.sample_every <- n

  let now_us () = (Unix.gettimeofday () -. st.t0) *. 1e6

  (* Span names come from code, not user input, but escape the two JSON
     metacharacters anyway so a stray quote cannot corrupt the log. *)
  let escape s =
    if String.exists (fun c -> c = '"' || c = '\\') s then
      String.concat ""
        (List.map
           (function '"' -> "\\\"" | '\\' -> "\\\\" | c -> String.make 1 c)
           (List.init (String.length s) (String.get s)))
    else s

  let enter name =
    match st.out with
    | None -> ()
    | Some oc ->
        let d = st.depth in
        st.depth <- d + 1;
        if d < max_depth then begin
          let t = now_us () in
          st.names.(d) <- name;
          st.starts.(d) <- t;
          Printf.fprintf oc "{\"ev\":\"enter\",\"span\":\"%s\",\"depth\":%d,\"t_us\":%.0f}\n"
            (escape name) d t
        end
        else Counter.incr drops

  let exit () =
    match st.out with
    | None -> ()
    | Some oc ->
        if st.depth > 0 then begin
          let d = st.depth - 1 in
          st.depth <- d;
          if d < max_depth then begin
            let t = now_us () in
            Printf.fprintf oc
              "{\"ev\":\"exit\",\"span\":\"%s\",\"depth\":%d,\"t_us\":%.0f,\"dur_us\":%.0f}\n"
              (escape st.names.(d)) d t
              (t -. st.starts.(d))
          end
        end

  let event name =
    match st.out with
    | None -> ()
    | Some oc ->
        st.events <- st.events + 1;
        if st.events mod st.sample_every = 0 then
          Printf.fprintf oc "{\"ev\":\"event\",\"name\":\"%s\",\"t_us\":%.0f}\n"
            (escape name) (now_us ())

  let with_span name f =
    enter name;
    Fun.protect ~finally:exit f
end

module Registry = struct
  type metric =
    | Counter of Counter.t
    | Gauge of Gauge.t
    | Histogram of Histogram.t

  type entry = { name : string; labels : (string * string) list; help : string; metric : metric }

  type t = {
    by_key : (string, entry) Hashtbl.t;
    mutable order : string list;  (** registration order, newest first *)
  }

  let create () = { by_key = Hashtbl.create 32; order = [] }

  let valid_name n =
    n <> ""
    && (match n.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true | _ -> false)
    && String.for_all
         (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true | _ -> false)
         n

  let escape_label v =
    String.concat ""
      (List.map
         (function
           | '"' -> "\\\"" | '\\' -> "\\\\" | '\n' -> "\\n" | c -> String.make 1 c)
         (List.init (String.length v) (String.get v)))

  let render_labels = function
    | [] -> ""
    | labels ->
        "{"
        ^ String.concat ","
            (List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label v)) labels)
        ^ "}"

  let key name labels = name ^ render_labels labels

  let register t ?(help = "") ?(labels = []) name build describe =
    if not (valid_name name) then
      invalid_arg (Printf.sprintf "Telemetry.Registry: bad metric name %S" name);
    List.iter
      (fun (k, _) ->
        if not (valid_name k) then
          invalid_arg (Printf.sprintf "Telemetry.Registry: bad label name %S" k))
      labels;
    let labels = List.sort compare labels in
    let k = key name labels in
    match Hashtbl.find_opt t.by_key k with
    | Some e -> describe e.metric
    | None ->
        let metric = build () in
        Hashtbl.replace t.by_key k { name; labels; help; metric };
        t.order <- k :: t.order;
        describe metric

  let counter t ?help ?labels name =
    register t ?help ?labels name
      (fun () -> Counter (Counter.make ()))
      (function
        | Counter c -> c
        | _ -> invalid_arg ("Telemetry.Registry: " ^ name ^ " is not a counter"))

  let gauge t ?help ?labels name =
    register t ?help ?labels name
      (fun () -> Gauge (Gauge.make ()))
      (function
        | Gauge g -> g
        | _ -> invalid_arg ("Telemetry.Registry: " ^ name ^ " is not a gauge"))

  let histogram t ?help ?labels name =
    register t ?help ?labels name
      (fun () -> Histogram (Histogram.make ()))
      (function
        | Histogram h -> h
        | _ -> invalid_arg ("Telemetry.Registry: " ^ name ^ " is not a histogram"))

  let entries t =
    List.rev_map (fun k -> Hashtbl.find t.by_key k) t.order

  let merge_into ~dst src =
    List.iter
      (fun e ->
        match e.metric with
        | Counter c ->
            Counter.merge_into
              ~dst:(counter dst ~help:e.help ~labels:e.labels e.name)
              c
        | Gauge g -> Gauge.set (gauge dst ~help:e.help ~labels:e.labels e.name) (Gauge.value g)
        | Histogram h ->
            Histogram.merge_into
              ~dst:(histogram dst ~help:e.help ~labels:e.labels e.name)
              h)
      (entries src)

  (* Prometheus text format 0.0.4.  All samples of a metric family must
     form one contiguous block, so entries are grouped by name (in
     first-registration order) with HELP/TYPE emitted once per name —
     label variants share the header. *)
  let to_prometheus t =
    let buf = Buffer.create 1024 in
    let all = entries t in
    let names =
      List.fold_left
        (fun acc e -> if List.mem e.name acc then acc else e.name :: acc)
        [] all
      |> List.rev
    in
    let grouped =
      List.concat_map (fun n -> List.filter (fun e -> e.name = n) all) names
    in
    let seen_header = Hashtbl.create 16 in
    let header e kind =
      if not (Hashtbl.mem seen_header e.name) then begin
        Hashtbl.replace seen_header e.name ();
        if e.help <> "" then Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" e.name e.help);
        Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" e.name kind)
      end
    in
    List.iter
      (fun e ->
        match e.metric with
        | Counter c ->
            header e "counter";
            Buffer.add_string buf
              (Printf.sprintf "%s%s %d\n" e.name (render_labels e.labels) (Counter.value c))
        | Gauge g ->
            header e "gauge";
            Buffer.add_string buf
              (Printf.sprintf "%s%s %.17g\n" e.name (render_labels e.labels) (Gauge.value g))
        | Histogram h ->
            header e "histogram";
            let with_le le =
              render_labels (List.sort compare (("le", le) :: e.labels))
            in
            let cum = ref 0 in
            Histogram.fold_nonzero
              (fun upper occupancy () ->
                cum := !cum + occupancy;
                if upper < max_int then
                  Buffer.add_string buf
                    (Printf.sprintf "%s_bucket%s %d\n" e.name (with_le (string_of_int upper)) !cum))
              h ();
            Buffer.add_string buf
              (Printf.sprintf "%s_bucket%s %d\n" e.name (with_le "+Inf") (Histogram.count h));
            Buffer.add_string buf
              (Printf.sprintf "%s_sum%s %d\n" e.name (render_labels e.labels) (Histogram.sum h));
            Buffer.add_string buf
              (Printf.sprintf "%s_count%s %d\n" e.name (render_labels e.labels)
                 (Histogram.count h)))
      grouped;
    Buffer.contents buf

  let histogram_json h =
    let buckets =
      List.rev
        (Histogram.fold_nonzero
           (fun upper occupancy acc ->
             Printf.sprintf "[%s,%d]"
               (if upper = max_int then "\"+Inf\"" else string_of_int upper)
               occupancy
             :: acc)
           h [])
    in
    Printf.sprintf
      "{\"count\":%d,\"sum\":%d,\"max\":%d,\"p50\":%.0f,\"p90\":%.0f,\"p99\":%.0f,\"buckets\":[%s]}"
      (Histogram.count h) (Histogram.sum h) (Histogram.max_observed h)
      (Histogram.quantile h 0.5) (Histogram.quantile h 0.9) (Histogram.quantile h 0.99)
      (String.concat "," buckets)

  let to_json t =
    let fields =
      List.map
        (fun e ->
          let k = escape_label (key e.name e.labels) in
          match e.metric with
          | Counter c -> Printf.sprintf "\"%s\":%d" k (Counter.value c)
          | Gauge g -> Printf.sprintf "\"%s\":%.17g" k (Gauge.value g)
          | Histogram h -> Printf.sprintf "\"%s\":%s" k (histogram_json h))
        (entries t)
    in
    "{" ^ String.concat "," fields ^ "}"
end

let default_registry = Registry.create ()

let () =
  Registry.register default_registry
    ~help:"Span-stack entries dropped past the preallocated depth limit"
    "netembed_spans_dropped_total"
    (fun () -> Registry.Counter Span.drops)
    (fun _ -> ())

type snapshot = {
  algorithm : string;
  outcome : string;
      (** "complete" (space exhausted), "unsat" (complete with zero
          mappings: proved infeasible), "partial" / "exhausted" (budget
          or timeout hit — gave up, nothing proved) *)
  visited : int;
  found : int;
  elapsed_s : float;
  time_to_first_s : float option;
  constraint_evals : int;
  domains_built : int;
  intersections : int;
  backtracks : int;
  max_depth : int;
  depth_histogram : Histogram.t;
  domain_size_histogram : Histogram.t;
}

let snapshot_to_json s =
  Printf.sprintf
    "{\"algorithm\":\"%s\",\"outcome\":\"%s\",\"visited\":%d,\"found\":%d,\"elapsed_s\":%.6f,%s\"constraint_evals\":%d,\"domains_built\":%d,\"intersections\":%d,\"backtracks\":%d,\"max_depth\":%d,\"depth_histogram\":%s,\"domain_size_histogram\":%s}"
    s.algorithm s.outcome s.visited s.found s.elapsed_s
    (match s.time_to_first_s with
    | None -> ""
    | Some t -> Printf.sprintf "\"time_to_first_s\":%.6f," t)
    s.constraint_evals s.domains_built s.intersections s.backtracks s.max_depth
    (Registry.histogram_json s.depth_histogram)
    (Registry.histogram_json s.domain_size_histogram)

let pp_snapshot ppf s =
  Format.fprintf ppf
    "%s: outcome=%s visited=%d found=%d elapsed=%.3fs evals=%d domains=%d \
     intersections=%d backtracks=%d max_depth=%d"
    s.algorithm s.outcome s.visited s.found s.elapsed_s s.constraint_evals
    s.domains_built s.intersections s.backtracks s.max_depth
