(** Zero-dependency telemetry kernel for the mapping service.

    The paper evaluates ECF/RWB/LNS entirely through observables —
    nodes visited, time to first mapping, constraint evaluations
    (Figs. 8-13) — and the ROADMAP's scaling goals need request-level
    latency and throughput numbers on top.  This module is the one
    place those observables are defined:

    - {!Counter} / {!Gauge}: monotonic int counters and settable
      gauges, single mutable cells with no allocation on update.
    - {!Histogram}: log-bucketed (HDR-style, ~base-1.2 bucket growth)
      value histograms backed by one preallocated int array per
      histogram; [observe] is a table lookup plus a handful of stores,
      so it is safe on the search hot path.
    - {!Span}: lightweight span tracing ([enter]/[exit] over a
      preallocated span stack) emitting a structured JSONL event log
      when enabled, and collapsing to a single branch when disabled.
    - {!Registry}: named, optionally labeled metrics with Prometheus
      text ({!Registry.to_prometheus}) and JSON ({!Registry.to_json})
      expositions, and cross-domain aggregation
      ({!Registry.merge_into}) for the parallel searchers.
    - {!type-snapshot}: the unified per-run statistics record the engine
      returns — one schema for ECF, RWB and LNS, so LNS finally
      reports constraint evaluations like the filtered algorithms.

    Concurrency: metrics are plain mutable cells, not atomics.  The
    intended topology is single-writer per instance — each search
    domain owns its registry/store and the results are merged at join
    — with any number of racy readers (the /metrics exposition reads
    live cells; int loads cannot tear in OCaml). *)

(** {1 Scalar metrics} *)

module Counter : sig
  type t

  val make : unit -> t
  val incr : t -> unit
  val add : t -> int -> unit
  (** Negative increments are rejected with [Invalid_argument]:
      counters are monotonic. *)

  val value : t -> int
  val reset : t -> unit
  val merge_into : dst:t -> t -> unit
  (** [merge_into ~dst src] adds [src]'s value into [dst]. *)
end

module Gauge : sig
  type t

  val make : unit -> t
  val set : t -> float -> unit
  val value : t -> float

  val merge_into : dst:t -> t -> unit
  (** [merge_into ~dst src] overwrites [dst] with [src]'s value — last
      write wins, like {!set}.  At a parallel join the source (a worker
      domain's registry) holds the most recent reading, so worker
      gauges are no longer dropped on merge. *)
end

val report_quantiles : (float * string) array
(** The quantile set every exposition reports — (quantile, JSON key)
    pairs, currently p50/p95/p99.  One constant shared by
    {!Registry.to_json} histograms and the {!Windowed} summaries so
    the two cannot drift. *)

(** {1 Log-bucketed histograms}

    Buckets cover the non-negative ints with upper bounds growing by
    max(+1, x1.2) — exact for values up to 10, then ~20% relative
    resolution up to [max_int].  The bucket layout is global (computed
    once), so histograms merge bucket-by-bucket and every histogram
    costs one int array of {!Histogram.bucket_count} slots, allocated
    at [make] time and never after. *)

module Histogram : sig
  type t

  val bucket_count : int
  (** Number of buckets in the (global) layout. *)

  val bucket_index : int -> int
  (** Index of the bucket a value falls into.  Values [<= 0] land in
      bucket 0; values above the penultimate bound land in the last
      (catch-all) bucket.  O(1) for values up to 4096 (direct table),
      O(log buckets) above. *)

  val bucket_upper : int -> int
  (** Inclusive upper bound of bucket [i] ([max_int] for the last).
      @raise Invalid_argument outside [0, bucket_count). *)

  val make : unit -> t
  val observe : t -> int -> unit
  (** Record one value.  Allocation-free.  Negative values are clamped
      to 0 (bucket and sum). *)

  val observe_n : t -> int -> int -> unit
  (** [observe_n t v n] records [n] observations of value [v] — what a
      caller keeping its own exact count array uses to fold into a
      histogram at snapshot time.  [n = 0] is a no-op.
      @raise Invalid_argument if [n < 0]. *)

  val count : t -> int
  val sum : t -> int
  val max_observed : t -> int
  (** Largest value observed, 0 when empty (exact, not bucketed). *)

  val bucket_value : t -> int -> int
  (** Occupancy of bucket [i]. *)

  val quantile : t -> float -> float
  (** [quantile h q] for [q] in [0,1]: the upper bound of the bucket
      holding the rank-[q] observation (nearest-rank, matching
      {!Netembed_workload.Stats.percentile} up to bucket resolution:
      the true value v satisfies [result/1.2 - 1 <= v <= result]).
      0 when empty.
      @raise Invalid_argument when [q] is outside [0,1]. *)

  val reset : t -> unit
  val copy : t -> t
  val merge_into : dst:t -> t -> unit

  val fold_nonzero : (int -> int -> 'a -> 'a) -> t -> 'a -> 'a
  (** [fold_nonzero f h acc] folds [f upper_bound occupancy] over the
      non-empty buckets in ascending order. *)
end

(** {1 Span tracing} *)

module Span : sig
  val enable : out_channel -> unit
  (** Start emitting JSONL events to the channel.  Each line is one of
      [{"ev":"enter","span":S,"depth":D,"t_us":T}],
      [{"ev":"exit","span":S,"depth":D,"t_us":T,"dur_us":US}] or
      [{"ev":"event","name":S,"t_us":T}], with [t_us] microseconds
      since [enable]. *)

  val disable : unit -> unit
  (** Stop emitting and flush.  The channel is not closed. *)

  val enabled : unit -> bool

  val set_sample_every : int -> unit
  (** Emit only every [n]-th {!event} (spans are always emitted while
      enabled) — the throttle for event storms such as all-matches
      enumerations.  Default 1; [n < 1] is rejected. *)

  val enter : string -> unit
  (** Push a span.  A single branch when disabled; no allocation either
      way (the span stack is preallocated, 64 levels deep; deeper
      nesting is counted but not recorded — each unrecorded level
      bumps {!dropped} and the [netembed_spans_dropped_total] counter
      of {!val-default_registry}). *)

  val exit : unit -> unit
  (** Pop the current span, emitting its duration.  Unbalanced [exit]s
      are ignored. *)

  val event : string -> unit
  (** Emit an instantaneous event (subject to the sampling rate). *)

  val with_span : string -> (unit -> 'a) -> 'a
  (** [with_span name f] = [enter name; f ()] with a guaranteed [exit]
      on both return and exception. *)

  val dropped : unit -> int
  (** Spans entered past the preallocated stack depth and therefore not
      recorded, since process start.  Also exposed as
      [netembed_spans_dropped_total] in {!val-default_registry}. *)
end

(** {1 Request phases} *)

module Phase : sig
  (** The fixed decomposition of one mapping request, in pipeline
      order.  {!index} is the layout of [snapshot.phases] and of the
      service's per-phase latency series. *)
  type t =
    | Parse  (** constraint parsing ([Request.parse_constraints]) *)
    | Admission  (** ledger admission check *)
    | Cache_lookup  (** filter-cache invalidate + probe *)
    | Filter_build  (** candidate-domain filter matrix build *)
    | Compile  (** constraint specialization + bytecode compilation *)
    | Search  (** the descent proper (sequential or work-stealing) *)
    | Ledger_commit  (** allocation commit / release bookkeeping *)
    | Encode  (** wire-frame encoding of the answer *)
    | Queue_wait
        (** time spent in the front-end admission queue before a worker
            picked the request up (appended after [Encode] so earlier
            indices stay stable; in wall-clock order it happens first) *)

  val all : t array
  val count : int
  val index : t -> int
  val name : t -> string
  (** Lowercase snake-case label: ["parse"], ["filter_build"], ... *)

  val of_index : int -> t
  (** @raise Invalid_argument outside [0, count). *)

  val make_timings : unit -> float array
  (** A fresh all-zero array of {!count} seconds cells. *)
end

(** {1 Request-scoped trace buffers} *)

module Trace : sig
  (** Per-request tracing.  Unlike {!Span} (one process-global JSONL
      stream), a trace buffer belongs to a single request: the service
      allocates it at submit, the engine and every parallel worker
      append complete spans, and the merged buffer serializes to
      Chrome [trace_event] JSON (open it in [chrome://tracing] or
      Perfetto).  Buffers are single-writer: each worker domain
      records into its own buffer (tid = worker index) and the owner
      merges at join. *)

  val fresh_id : unit -> int
  (** Allocate a process-globally unique trace id (one atomic
      fetch-and-add; safe from any domain).  Id 0 is reserved for
      "not traced". *)

  type buffer

  val create : ?tid:int -> unit -> buffer
  (** A fresh buffer whose events default to thread-id [tid]
      (default 0 — the dispatching domain). *)

  val length : buffer -> int

  val now_us : unit -> float
  (** Absolute wall-clock microseconds — identical across domains, so
      spans recorded on different workers line up on one timeline. *)

  val add :
    ?tid:int -> buffer -> name:string -> start_us:float -> dur_us:float -> unit
  (** Append one complete span. *)

  val span : buffer -> string -> (unit -> 'a) -> 'a
  (** [span b name f] times [f] and appends the span, exceptions
      included. *)

  val span_opt : buffer option -> string -> (unit -> 'a) -> 'a
  (** {!span} when a buffer is present, plain [f ()] otherwise — the
      zero-cost gate instrumented code uses. *)

  val merge_into : dst:buffer -> buffer -> unit
  (** Append every event of the source, keeping its thread ids — the
      join step for per-worker buffers. *)

  val iter :
    (name:string -> tid:int -> start_us:float -> dur_us:float -> unit) ->
    buffer ->
    unit

  val to_chrome_json : ?trace_id:int -> buffer -> string
  (** Chrome [trace_event] JSON (object format, ["traceEvents"] array
      of ["ph":"X"] complete events).  [pid] and [args.trace_id] carry
      [trace_id], [tid] the recording worker; timestamps are shifted
      to the earliest event. *)
end

(** {1 Sliding-window histograms} *)

module Windowed : sig
  (** A sliding-window histogram: a ring of {!Histogram.t} slices,
      each covering [window / slices] seconds of a coarse clock.
      Observations land in the slice for the current time; expired
      slices are cleared lazily on the next touch.  Reads merge live
      slices into a scratch histogram, so quantiles reflect only the
      last [window] seconds — the p50/p95/p99 the ROADMAP's load
      harness reports against. *)

  type t

  val create :
    ?clock:(unit -> float) -> ?scale:float -> window:float -> slices:int -> unit -> t
  (** [create ~window ~slices ()] covers [window] seconds with
      [slices] ring slots.  [clock] (default [Unix.gettimeofday])
      is injectable for tests; [scale] (default 1.0) multiplies
      values at render time (e.g. 1e-6 to expose µs observations in
      seconds).
      @raise Invalid_argument if [slices < 1] or [window <= 0]. *)

  val observe : t -> int -> unit
  (** Record one value into the current slice (clamping as
      {!Histogram.observe}). *)

  val merged : t -> Histogram.t
  (** The live slices merged into one histogram.  Returns a scratch
      value owned by [t]: valid until the next [merged] call. *)

  val count : t -> int
  (** Observations currently inside the window. *)

  val quantile : t -> float -> float
  (** Windowed quantile, scaled by the render multiplier. *)

  val merge_into : dst:t -> t -> unit
  (** Merge the source's live slices into the destination's slices for
      the same absolute time — the parallel-join step.  Both sides
      must share the same window geometry.
      @raise Invalid_argument on mismatched window/slice counts. *)

  val slice_count : t -> int
  val window : t -> float
  val scale : t -> float
  val clock : t -> unit -> float
end

(** {1 Registries and exposition} *)

(** Registries are safe to use from multiple domains: registration,
    enumeration (the expositions) and {!Registry.merge_into} are
    serialized by an internal mutex, and a whole merge is atomic with
    respect to other merges into the same destination — concurrent
    worker joins cannot lose counter updates.  Metric {e updates}
    (increments, observations) remain lock-free plain stores under the
    single-writer/racy-reader model; callers that need exact counts
    from several writing domains serialize those updates themselves
    (see {!Netembed_service.Service}). *)
module Registry : sig
  type t

  val create : unit -> t

  val counter :
    t -> ?help:string -> ?labels:(string * string) list -> string -> Counter.t
  (** Register (or retrieve) the counter with this name and label set.
      Metric names must match [[a-zA-Z_:][a-zA-Z0-9_:]*].
      @raise Invalid_argument on a bad name or if the name+labels is
      already registered as a different metric kind. *)

  val gauge :
    t -> ?help:string -> ?labels:(string * string) list -> string -> Gauge.t

  val histogram :
    t -> ?help:string -> ?labels:(string * string) list -> string -> Histogram.t

  val windowed :
    t ->
    ?help:string ->
    ?labels:(string * string) list ->
    ?clock:(unit -> float) ->
    ?scale:float ->
    window:float ->
    slices:int ->
    string ->
    Windowed.t
  (** Register (or retrieve) a {!Windowed} histogram.  Creation
      parameters are used only on first registration. *)

  val merge_into : dst:t -> t -> unit
  (** Fold every metric of the source into the destination, creating
      missing ones: counters, histograms and windowed histograms add,
      gauges take the source value.  The join step of the per-domain
      registries of {!Netembed_parallel}. *)

  val to_prometheus : t -> string
  (** Prometheus text exposition format 0.0.4.  Histograms emit
      cumulative [_bucket{le="..."}] lines for their occupied buckets
      plus [le="+Inf"], [_sum] and [_count]; windowed histograms render
      as summaries — one sample per {!report_quantiles} entry
      ([quantile="0.5"|"0.95"|"0.99"]) plus [_sum] and [_count], all
      computed over the sliding window and scaled by the render
      multiplier. *)

  val to_json : t -> string
  (** One JSON object keyed by metric name (labels rendered into the
      key); histograms expose count/sum/max, the {!report_quantiles}
      set and non-empty buckets; windowed histograms expose
      count/sum/quantiles/window_s. *)
end

val default_registry : Registry.t
(** The process-wide registry: the engine's per-algorithm counters and
    the service/server metrics live here, and [GET /metrics] serves it. *)

(** {1 The unified per-run snapshot} *)

type snapshot = {
  algorithm : string;
  outcome : string;
      (** how the run ended: ["complete"] (space exhausted; with
          [found = 0] this proves no mapping exists — reported as
          ["unsat"]), ["partial"] (budget hit after finding some
          mappings) or ["exhausted"] (gave up empty-handed; nothing
          proved) *)
  visited : int;  (** search-tree nodes visited *)
  found : int;  (** feasible mappings encountered *)
  elapsed_s : float;
  time_to_first_s : float option;
  constraint_evals : int;
      (** constraint-expression evaluations, all phases — filter build
          for ECF/RWB, lazy edge checks for LNS *)
  domains_built : int;  (** candidate domains computed *)
  intersections : int;  (** filter-cell intersections *)
  backtracks : int;  (** exhausted candidate domains (returns) *)
  max_depth : int;  (** deepest search depth visited *)
  depth_histogram : Histogram.t;  (** visits per search depth *)
  domain_size_histogram : Histogram.t;
      (** candidate-domain cardinality per computed domain *)
  phases : float array;
      (** seconds spent per request phase, indexed by {!Phase.index}
          (length {!Phase.count}).  The engine fills filter_build /
          compile / search; the service adds parse / admission /
          cache_lookup / ledger_commit; the server stamps encode after
          building the reply. *)
}

val phases_to_json : float array -> string
(** One JSON object mapping {!Phase.name}s to seconds, canonical
    order.  Arrays shorter than {!Phase.count} render only the phases
    they carry. *)

val snapshot_to_json : snapshot -> string
(** Single-line JSON object — the [--stats] output of the CLI. *)

val pp_snapshot : Format.formatter -> snapshot -> unit
