(** Zero-dependency telemetry kernel for the mapping service.

    The paper evaluates ECF/RWB/LNS entirely through observables —
    nodes visited, time to first mapping, constraint evaluations
    (Figs. 8-13) — and the ROADMAP's scaling goals need request-level
    latency and throughput numbers on top.  This module is the one
    place those observables are defined:

    - {!Counter} / {!Gauge}: monotonic int counters and settable
      gauges, single mutable cells with no allocation on update.
    - {!Histogram}: log-bucketed (HDR-style, ~base-1.2 bucket growth)
      value histograms backed by one preallocated int array per
      histogram; [observe] is a table lookup plus a handful of stores,
      so it is safe on the search hot path.
    - {!Span}: lightweight span tracing ([enter]/[exit] over a
      preallocated span stack) emitting a structured JSONL event log
      when enabled, and collapsing to a single branch when disabled.
    - {!Registry}: named, optionally labeled metrics with Prometheus
      text ({!Registry.to_prometheus}) and JSON ({!Registry.to_json})
      expositions, and cross-domain aggregation
      ({!Registry.merge_into}) for the parallel searchers.
    - {!type-snapshot}: the unified per-run statistics record the engine
      returns — one schema for ECF, RWB and LNS, so LNS finally
      reports constraint evaluations like the filtered algorithms.

    Concurrency: metrics are plain mutable cells, not atomics.  The
    intended topology is single-writer per instance — each search
    domain owns its registry/store and the results are merged at join
    — with any number of racy readers (the /metrics exposition reads
    live cells; int loads cannot tear in OCaml). *)

(** {1 Scalar metrics} *)

module Counter : sig
  type t

  val make : unit -> t
  val incr : t -> unit
  val add : t -> int -> unit
  (** Negative increments are rejected with [Invalid_argument]:
      counters are monotonic. *)

  val value : t -> int
  val reset : t -> unit
  val merge_into : dst:t -> t -> unit
  (** [merge_into ~dst src] adds [src]'s value into [dst]. *)
end

module Gauge : sig
  type t

  val make : unit -> t
  val set : t -> float -> unit
  val value : t -> float
end

(** {1 Log-bucketed histograms}

    Buckets cover the non-negative ints with upper bounds growing by
    max(+1, x1.2) — exact for values up to 10, then ~20% relative
    resolution up to [max_int].  The bucket layout is global (computed
    once), so histograms merge bucket-by-bucket and every histogram
    costs one int array of {!Histogram.bucket_count} slots, allocated
    at [make] time and never after. *)

module Histogram : sig
  type t

  val bucket_count : int
  (** Number of buckets in the (global) layout. *)

  val bucket_index : int -> int
  (** Index of the bucket a value falls into.  Values [<= 0] land in
      bucket 0; values above the penultimate bound land in the last
      (catch-all) bucket.  O(1) for values up to 4096 (direct table),
      O(log buckets) above. *)

  val bucket_upper : int -> int
  (** Inclusive upper bound of bucket [i] ([max_int] for the last).
      @raise Invalid_argument outside [0, bucket_count). *)

  val make : unit -> t
  val observe : t -> int -> unit
  (** Record one value.  Allocation-free.  Negative values are clamped
      to 0 (bucket and sum). *)

  val observe_n : t -> int -> int -> unit
  (** [observe_n t v n] records [n] observations of value [v] — what a
      caller keeping its own exact count array uses to fold into a
      histogram at snapshot time.  [n = 0] is a no-op.
      @raise Invalid_argument if [n < 0]. *)

  val count : t -> int
  val sum : t -> int
  val max_observed : t -> int
  (** Largest value observed, 0 when empty (exact, not bucketed). *)

  val bucket_value : t -> int -> int
  (** Occupancy of bucket [i]. *)

  val quantile : t -> float -> float
  (** [quantile h q] for [q] in [0,1]: the upper bound of the bucket
      holding the rank-[q] observation (nearest-rank, matching
      {!Netembed_workload.Stats.percentile} up to bucket resolution:
      the true value v satisfies [result/1.2 - 1 <= v <= result]).
      0 when empty.
      @raise Invalid_argument when [q] is outside [0,1]. *)

  val reset : t -> unit
  val copy : t -> t
  val merge_into : dst:t -> t -> unit

  val fold_nonzero : (int -> int -> 'a -> 'a) -> t -> 'a -> 'a
  (** [fold_nonzero f h acc] folds [f upper_bound occupancy] over the
      non-empty buckets in ascending order. *)
end

(** {1 Span tracing} *)

module Span : sig
  val enable : out_channel -> unit
  (** Start emitting JSONL events to the channel.  Each line is one of
      [{"ev":"enter","span":S,"depth":D,"t_us":T}],
      [{"ev":"exit","span":S,"depth":D,"t_us":T,"dur_us":US}] or
      [{"ev":"event","name":S,"t_us":T}], with [t_us] microseconds
      since [enable]. *)

  val disable : unit -> unit
  (** Stop emitting and flush.  The channel is not closed. *)

  val enabled : unit -> bool

  val set_sample_every : int -> unit
  (** Emit only every [n]-th {!event} (spans are always emitted while
      enabled) — the throttle for event storms such as all-matches
      enumerations.  Default 1; [n < 1] is rejected. *)

  val enter : string -> unit
  (** Push a span.  A single branch when disabled; no allocation either
      way (the span stack is preallocated, 64 levels deep; deeper
      nesting is counted but not recorded — each unrecorded level
      bumps {!dropped} and the [netembed_spans_dropped_total] counter
      of {!val-default_registry}). *)

  val exit : unit -> unit
  (** Pop the current span, emitting its duration.  Unbalanced [exit]s
      are ignored. *)

  val event : string -> unit
  (** Emit an instantaneous event (subject to the sampling rate). *)

  val with_span : string -> (unit -> 'a) -> 'a
  (** [with_span name f] = [enter name; f ()] with a guaranteed [exit]
      on both return and exception. *)

  val dropped : unit -> int
  (** Spans entered past the preallocated stack depth and therefore not
      recorded, since process start.  Also exposed as
      [netembed_spans_dropped_total] in {!val-default_registry}. *)
end

(** {1 Registries and exposition} *)

module Registry : sig
  type t

  val create : unit -> t

  val counter :
    t -> ?help:string -> ?labels:(string * string) list -> string -> Counter.t
  (** Register (or retrieve) the counter with this name and label set.
      Metric names must match [[a-zA-Z_:][a-zA-Z0-9_:]*].
      @raise Invalid_argument on a bad name or if the name+labels is
      already registered as a different metric kind. *)

  val gauge :
    t -> ?help:string -> ?labels:(string * string) list -> string -> Gauge.t

  val histogram :
    t -> ?help:string -> ?labels:(string * string) list -> string -> Histogram.t

  val merge_into : dst:t -> t -> unit
  (** Fold every metric of the source into the destination, creating
      missing ones: counters and histograms add, gauges take the source
      value.  The join step of the per-domain registries of
      {!Netembed_parallel}. *)

  val to_prometheus : t -> string
  (** Prometheus text exposition format 0.0.4.  Histograms emit
      cumulative [_bucket{le="..."}] lines for their occupied buckets
      plus [le="+Inf"], [_sum] and [_count]. *)

  val to_json : t -> string
  (** One JSON object keyed by metric name (labels rendered into the
      key); histograms expose count/sum/max/quantiles and non-empty
      buckets. *)
end

val default_registry : Registry.t
(** The process-wide registry: the engine's per-algorithm counters and
    the service/server metrics live here, and [GET /metrics] serves it. *)

(** {1 The unified per-run snapshot} *)

type snapshot = {
  algorithm : string;
  outcome : string;
      (** how the run ended: ["complete"] (space exhausted; with
          [found = 0] this proves no mapping exists — reported as
          ["unsat"]), ["partial"] (budget hit after finding some
          mappings) or ["exhausted"] (gave up empty-handed; nothing
          proved) *)
  visited : int;  (** search-tree nodes visited *)
  found : int;  (** feasible mappings encountered *)
  elapsed_s : float;
  time_to_first_s : float option;
  constraint_evals : int;
      (** constraint-expression evaluations, all phases — filter build
          for ECF/RWB, lazy edge checks for LNS *)
  domains_built : int;  (** candidate domains computed *)
  intersections : int;  (** filter-cell intersections *)
  backtracks : int;  (** exhausted candidate domains (returns) *)
  max_depth : int;  (** deepest search depth visited *)
  depth_histogram : Histogram.t;  (** visits per search depth *)
  domain_size_histogram : Histogram.t;
      (** candidate-domain cardinality per computed domain *)
}

val snapshot_to_json : snapshot -> string
(** Single-line JSON object — the [--stats] output of the CLI. *)

val pp_snapshot : Format.formatter -> snapshot -> unit
