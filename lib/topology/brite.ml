open Netembed_graph
module Attrs = Netembed_attr.Attrs
module Value = Netembed_attr.Value
module Rng = Netembed_rng.Rng

type model =
  | Waxman of { alpha : float; beta : float }
  | Barabasi_albert

type params = {
  n : int;
  m : int;
  model : model;
  plane_size : float;
  delay_per_km : float;
  jitter : float;
}

let default_waxman ~n =
  {
    n;
    m = 2;
    model = Waxman { alpha = 0.15; beta = 0.2 };
    plane_size = 1000.0;
    delay_per_km = 0.02;
    jitter = 0.25;
  }

let default_barabasi ~n = { (default_waxman ~n) with model = Barabasi_albert }

let node_xy g v =
  let attrs = Graph.node_attrs g v in
  match (Attrs.float "x" attrs, Attrs.float "y" attrs) with
  | Some x, Some y -> (x, y)
  | _ -> invalid_arg "Brite: node lacks coordinates"

let distance g u v =
  let xu, yu = node_xy g u and xv, yv = node_xy g v in
  Float.hypot (xu -. xv) (yu -. yv)

let edge_distance g e =
  let u, v = Graph.endpoints g e in
  distance g u v

let edge_attrs_for rng p dist =
  let avg = (dist *. p.delay_per_km) +. Rng.exponential rng ~mean:1.0 in
  let half = p.jitter *. avg in
  let lo = Float.max 0.05 (avg -. (half *. Rng.float rng 1.0)) in
  let hi = avg +. (half *. Rng.float rng 1.0) in
  let bandwidth = Rng.pareto rng ~shape:1.2 ~scale:10.0 in
  Attrs.of_list
    [
      ("minDelay", Value.Float lo);
      ("avgDelay", Value.Float avg);
      ("maxDelay", Value.Float hi);
      ("bandwidth", Value.Float (Float.min bandwidth 10_000.0));
    ]

let place_node rng p g =
  let x = Rng.float rng p.plane_size and y = Rng.float rng p.plane_size in
  (* PlanetLab-like host capacities, so BRITE graphs work as hosting
     networks under the resource ledger out of the box. *)
  let cpu = 1000 + (200 * Rng.int rng 11) in
  let mem = 512 * (1 + Rng.int rng 8) in
  Graph.add_node g
    (Attrs.of_list
       [
         ("x", Value.Float x);
         ("y", Value.Float y);
         ("cpuMhz", Value.Int cpu);
         ("memMB", Value.Int mem);
       ])

(* Pick [m] distinct attachment targets among nodes [0 .. limit-1]
   according to the model, never failing: if probabilistic rounds stall,
   fall back to uniform choice among the remaining nodes. *)
let pick_targets rng p g ~limit ~v =
  let chosen = Hashtbl.create p.m in
  let want = min p.m limit in
  let l = p.plane_size *. sqrt 2.0 in
  (match p.model with
  | Waxman { alpha; beta } ->
      let attempts = ref 0 in
      let max_attempts = 50 * limit in
      while Hashtbl.length chosen < want && !attempts < max_attempts do
        incr attempts;
        let u = Rng.int rng limit in
        if not (Hashtbl.mem chosen u) then begin
          let d = distance g u v in
          let prob = alpha *. exp (-.d /. (beta *. l)) in
          if Rng.float rng 1.0 < prob then Hashtbl.replace chosen u ()
        end
      done
  | Barabasi_albert ->
      (* Roulette over degrees; degree-0 impossible after the seed edge. *)
      let attempts = ref 0 in
      let max_attempts = 50 * limit in
      while Hashtbl.length chosen < want && !attempts < max_attempts do
        incr attempts;
        let total =
          let sum = ref 0 in
          for u = 0 to limit - 1 do
            sum := !sum + Graph.degree g u + 1
          done;
          !sum
        in
        let target = Rng.int rng total in
        let acc = ref 0 and found = ref (-1) in
        (try
           for u = 0 to limit - 1 do
             acc := !acc + Graph.degree g u + 1;
             if !acc > target then begin
               found := u;
               raise Exit
             end
           done
         with Exit -> ());
        if !found >= 0 && not (Hashtbl.mem chosen !found) then
          Hashtbl.replace chosen !found ()
      done);
  (* Fallback: ensure we return exactly [want] targets. *)
  while Hashtbl.length chosen < want do
    let u = Rng.int rng limit in
    if not (Hashtbl.mem chosen u) then Hashtbl.replace chosen u ()
  done;
  Hashtbl.fold (fun u () acc -> u :: acc) chosen []

let generate rng p =
  if p.n < 2 then invalid_arg "Brite.generate: n < 2";
  if p.m < 1 then invalid_arg "Brite.generate: m < 1";
  let model_name =
    match p.model with Waxman _ -> "waxman" | Barabasi_albert -> "ba"
  in
  let g = Graph.create ~name:(Printf.sprintf "brite-%s-%d" model_name p.n) () in
  (* Seed: two connected nodes. *)
  let v0 = place_node rng p g in
  let v1 = place_node rng p g in
  ignore (Graph.add_edge g v0 v1 (edge_attrs_for rng p (distance g v0 v1)));
  for _ = 2 to p.n - 1 do
    let limit = Graph.node_count g in
    let v = place_node rng p g in
    let targets = pick_targets rng p g ~limit ~v in
    List.iter
      (fun u -> ignore (Graph.add_edge g u v (edge_attrs_for rng p (distance g u v))))
      targets
  done;
  g
