(** BRITE-style synthetic Internet topologies (Medina, Lakhina, Matta,
    Byers — the generator the paper uses for its large hosting
    networks, section VII-C).

    BRITE's router-level models place nodes on a square plane and grow
    the graph incrementally, attaching each new node with [m] links
    chosen either by Waxman distance probability or by Barabási-Albert
    preferential connectivity ("based on the power-law models of node
    connectivity of the Internet", as the paper puts it).  With [m = 2]
    this yields E ≈ 2·N, matching the paper's hosting networks
    (N=1500 E=3030, N=2000 E=4040, N=2500 E=5020).

    Produced attributes:
    - node: ["x"], ["y"] (plane coordinates, floats) and PlanetLab-like
      ["cpuMhz"]/["memMB"] capacities for the resource ledger
    - edge: ["minDelay"], ["avgDelay"], ["maxDelay"] (ms; propagation
      delay proportional to Euclidean distance plus queueing jitter),
      ["bandwidth"] (Mbps, heavy-tailed). *)

type model =
  | Waxman of { alpha : float; beta : float }
      (** Connection probability [alpha * exp (-d / (beta * l))] where
          [d] is Euclidean distance and [l] the plane diagonal.
          BRITE defaults: alpha = 0.15, beta = 0.2. *)
  | Barabasi_albert
      (** Preferential attachment: new nodes connect to existing node
          [i] with probability proportional to [degree i]. *)

type params = {
  n : int;  (** number of nodes *)
  m : int;  (** links added per new node (>= 1) *)
  model : model;
  plane_size : float;  (** side of the placement square, km *)
  delay_per_km : float;  (** propagation delay, ms/km *)
  jitter : float;  (** relative half-width of the min..max delay band *)
}

val default_waxman : n:int -> params
(** BRITE Waxman defaults (alpha 0.15, beta 0.2, m = 2, 1000 km plane). *)

val default_barabasi : n:int -> params
(** BA model with m = 2 — the paper's hosting-network shape. *)

val generate : Netembed_rng.Rng.t -> params -> Netembed_graph.Graph.t
(** Always connected (each new node attaches to >= 1 existing node).
    @raise Invalid_argument if [n < 2] or [m < 1]. *)

val edge_distance : Netembed_graph.Graph.t -> Netembed_graph.Graph.edge -> float
(** Euclidean length of an edge from the endpoint coordinates. *)
