open Netembed_graph
module Attrs = Netembed_attr.Attrs
module Value = Netembed_attr.Value

let make_nodes g node_attrs n =
  Array.init n (fun _ -> Graph.add_node g node_attrs)

let ring ?(node = Attrs.empty) ?(edge = Attrs.empty) n =
  if n < 3 then invalid_arg "Regular.ring: n < 3";
  let g = Graph.create ~name:(Printf.sprintf "ring-%d" n) () in
  let vs = make_nodes g node n in
  for i = 0 to n - 1 do
    ignore (Graph.add_edge g vs.(i) vs.((i + 1) mod n) edge)
  done;
  g

let star ?(node = Attrs.empty) ?(edge = Attrs.empty) n =
  if n < 2 then invalid_arg "Regular.star: n < 2";
  let g = Graph.create ~name:(Printf.sprintf "star-%d" n) () in
  let vs = make_nodes g node n in
  for i = 1 to n - 1 do
    ignore (Graph.add_edge g vs.(0) vs.(i) edge)
  done;
  g

let clique ?(node = Attrs.empty) ?(edge = Attrs.empty) n =
  if n < 1 then invalid_arg "Regular.clique: n < 1";
  let g = Graph.create ~name:(Printf.sprintf "clique-%d" n) () in
  let vs = make_nodes g node n in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      ignore (Graph.add_edge g vs.(i) vs.(j) edge)
    done
  done;
  g

let line ?(node = Attrs.empty) ?(edge = Attrs.empty) n =
  if n < 1 then invalid_arg "Regular.line: n < 1";
  let g = Graph.create ~name:(Printf.sprintf "line-%d" n) () in
  let vs = make_nodes g node n in
  for i = 0 to n - 2 do
    ignore (Graph.add_edge g vs.(i) vs.(i + 1) edge)
  done;
  g

let balanced_tree ?(node = Attrs.empty) ?(edge = Attrs.empty) ~arity depth =
  if arity < 1 || depth < 0 then invalid_arg "Regular.balanced_tree";
  let g = Graph.create ~name:(Printf.sprintf "tree-%d-%d" arity depth) () in
  let root = Graph.add_node g node in
  let rec expand parent level =
    if level < depth then
      for _ = 1 to arity do
        let child = Graph.add_node g node in
        ignore (Graph.add_edge g parent child edge);
        expand child (level + 1)
      done
  in
  expand root 0;
  g

let grid ?(node = Attrs.empty) ?(edge = Attrs.empty) ~rows cols =
  if rows < 1 || cols < 1 then invalid_arg "Regular.grid";
  let g = Graph.create ~name:(Printf.sprintf "grid-%dx%d" rows cols) () in
  let vs = Array.init rows (fun _ -> make_nodes g node cols) in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c + 1 < cols then ignore (Graph.add_edge g vs.(r).(c) vs.(r).(c + 1) edge);
      if r + 1 < rows then ignore (Graph.add_edge g vs.(r).(c) vs.(r + 1).(c) edge)
    done
  done;
  g

let torus ?(node = Attrs.empty) ?(edge = Attrs.empty) ~rows cols =
  if rows < 3 || cols < 3 then invalid_arg "Regular.torus: needs rows, cols >= 3";
  let g = Graph.create ~name:(Printf.sprintf "torus-%dx%d" rows cols) () in
  let vs = Array.init rows (fun _ -> make_nodes g node cols) in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      ignore (Graph.add_edge g vs.(r).(c) vs.(r).((c + 1) mod cols) edge);
      ignore (Graph.add_edge g vs.(r).(c) vs.((r + 1) mod rows).(c) edge)
    done
  done;
  g

let hypercube ?(node = Attrs.empty) ?(edge = Attrs.empty) d =
  if d < 1 then invalid_arg "Regular.hypercube: d < 1";
  let n = 1 lsl d in
  let g = Graph.create ~name:(Printf.sprintf "hypercube-%d" d) () in
  let vs = make_nodes g node n in
  for v = 0 to n - 1 do
    for bit = 0 to d - 1 do
      let w = v lxor (1 lsl bit) in
      if v < w then ignore (Graph.add_edge g vs.(v) vs.(w) edge)
    done
  done;
  g

type shape = Ring | Star | Clique | Line | Tree of int | Grid | Torus | Hypercube

let shape_name = function
  | Ring -> "ring"
  | Star -> "star"
  | Clique -> "clique"
  | Line -> "line"
  | Tree a -> Printf.sprintf "tree%d" a
  | Grid -> "grid"
  | Torus -> "torus"
  | Hypercube -> "hypercube"

(* Squarest rows x cols factorization covering at least n nodes. *)
let squarest n =
  let r = int_of_float (Float.round (sqrt (float_of_int n))) in
  let r = max 1 r in
  let c = (n + r - 1) / r in
  (r, c)

(* Uniform capacities for ledger-backed hosting use: every node and
   link declares the same ample budget, so regular graphs admit a known
   number of identical tenants. *)
let default_capacity_node =
  Attrs.of_list [ ("cpuMhz", Value.Int 3000); ("memMB", Value.Int 4096) ]

let default_capacity_edge = Attrs.of_list [ ("bandwidth", Value.Float 1000.0) ]

let of_shape ?(node = Attrs.empty) ?(edge = Attrs.empty) shape n =
  match shape with
  | Ring -> ring ~node ~edge (max 3 n)
  | Star -> star ~node ~edge (max 2 n)
  | Clique -> clique ~node ~edge (max 1 n)
  | Line -> line ~node ~edge (max 1 n)
  | Tree arity ->
      let rec depth_for d count =
        if count >= n then d else depth_for (d + 1) ((count * arity) + 1)
      in
      balanced_tree ~node ~edge ~arity (depth_for 0 1)
  | Grid ->
      let rows, cols = squarest (max 1 n) in
      grid ~node ~edge ~rows cols
  | Torus ->
      let rows, cols = squarest (max 9 n) in
      torus ~node ~edge ~rows:(max 3 rows) (max 3 cols)
  | Hypercube ->
      let rec log2 d cap = if cap * 2 > n then d else log2 (d + 1) (cap * 2) in
      hypercube ~node ~edge (max 1 (log2 0 1))

let capacitated ?(node = default_capacity_node) ?(edge = default_capacity_edge)
    shape n =
  of_shape ~node ~edge shape n
