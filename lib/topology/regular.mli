(** Regular query topologies (paper, section VII-A second approach:
    "regular topologies that are synthetically generated (e.g., rings,
    stars, cliques, etc.)" — typical of applications with a regular
    communication structure such as grid computations).

    Every generator takes the per-node and per-edge attribute tables to
    stamp on the produced elements (commonly delay-range constraints),
    and produces an undirected graph. *)

open Netembed_graph

type attrs := Netembed_attr.Attrs.t

val ring : ?node:attrs -> ?edge:attrs -> int -> Graph.t
(** [ring n] for [n >= 3]; @raise Invalid_argument below that. *)

val star : ?node:attrs -> ?edge:attrs -> int -> Graph.t
(** [star n] is one hub plus [n - 1] leaves; [n >= 2]. *)

val clique : ?node:attrs -> ?edge:attrs -> int -> Graph.t
(** [clique n] is the complete graph K_n; [n >= 1]. *)

val line : ?node:attrs -> ?edge:attrs -> int -> Graph.t
(** Path graph; [n >= 1]. *)

val balanced_tree : ?node:attrs -> ?edge:attrs -> arity:int -> int -> Graph.t
(** Complete [arity]-ary tree with the given depth ([depth = 0] is a
    single node). *)

val grid : ?node:attrs -> ?edge:attrs -> rows:int -> int -> Graph.t
val torus : ?node:attrs -> ?edge:attrs -> rows:int -> int -> Graph.t
(** [torus] requires [rows >= 3] and [cols >= 3] so wrap-around edges
    never duplicate grid edges. *)

val hypercube : ?node:attrs -> ?edge:attrs -> int -> Graph.t
(** [hypercube d] is the d-dimensional cube on [2^d] nodes; [d >= 1]. *)

type shape = Ring | Star | Clique | Line | Tree of int | Grid | Torus | Hypercube

val shape_name : shape -> string

val of_shape : ?node:attrs -> ?edge:attrs -> shape -> int -> Graph.t
(** [of_shape s n] builds shape [s] with (approximately) [n] nodes:
    trees round up to a complete tree, grids/tori use the squarest
    factorization, hypercubes round [n] down to a power of two. *)

(** {1 Ledger-ready hosting graphs} *)

val default_capacity_node : attrs
(** [cpuMhz = 3000], [memMB = 4096] — the uniform per-node budget. *)

val default_capacity_edge : attrs
(** [bandwidth = 1000.0]. *)

val capacitated : ?node:attrs -> ?edge:attrs -> shape -> int -> Graph.t
(** {!of_shape} with every node and edge declaring the default capacity
    attributes, so the graph is immediately usable as a hosting network
    under {!Netembed_ledger.Ledger} (uniform capacities make tenant
    counts predictable in tests and benches). *)
