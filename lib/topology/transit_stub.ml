open Netembed_graph
module Attrs = Netembed_attr.Attrs
module Value = Netembed_attr.Value
module Rng = Netembed_rng.Rng

type params = {
  transit_nodes : int;
  stubs_per_transit : int;
  stub_size : int;
  transit_edge_prob : float;
  stub_edge_prob : float;
  transit_delay : float * float;
  stub_delay : float * float;
}

let default =
  {
    transit_nodes = 4;
    stubs_per_transit = 3;
    stub_size = 8;
    transit_edge_prob = 0.4;
    stub_edge_prob = 0.3;
    transit_delay = (20.0, 120.0);
    stub_delay = (0.5, 8.0);
  }

(* Link bandwidth (Mbps) mirrors the delay hierarchy: provisioned core
   trunks versus access links — the capacity attribute the resource
   ledger debits. *)
let transit_bandwidth = (1000.0, 10000.0)
let stub_bandwidth = (50.0, 200.0)

let link_attrs rng (lo, hi) (bw_lo, bw_hi) =
  let avg = Rng.uniform rng ~lo ~hi in
  let spread = 0.15 *. avg in
  Attrs.of_list
    [
      ("minDelay", Value.Float (Float.max 0.01 (avg -. spread)));
      ("avgDelay", Value.Float avg);
      ("maxDelay", Value.Float (avg +. spread));
      ("bandwidth", Value.Float (Rng.uniform rng ~lo:bw_lo ~hi:bw_hi));
    ]

(* Node capacities by tier: transit routers are provisioned machines,
   stub hosts are commodity boxes. *)
let tier_attrs rng tier =
  let cpu, mem =
    match tier with
    | "transit" -> (2400 + (400 * Rng.int rng 5), 4096 * (1 + Rng.int rng 4))
    | _ -> (1000 + (200 * Rng.int rng 11), 512 * (1 + Rng.int rng 8))
  in
  Attrs.of_list
    [
      ("tier", Value.String tier);
      ("cpuMhz", Value.Int cpu);
      ("memMB", Value.Int mem);
    ]

(* Connected random graph on [vs]: random spanning tree (each node links
   to a random predecessor) plus Bernoulli extra edges. *)
let connect_randomly rng g vs prob delay_range bw_range =
  let n = Array.length vs in
  for i = 1 to n - 1 do
    let j = Rng.int rng i in
    ignore (Graph.add_edge g vs.(j) vs.(i) (link_attrs rng delay_range bw_range))
  done;
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if
        (not (Graph.mem_edge g vs.(i) vs.(j)))
        && Rng.float rng 1.0 < prob
      then ignore (Graph.add_edge g vs.(i) vs.(j) (link_attrs rng delay_range bw_range))
    done
  done

let generate rng p =
  if p.transit_nodes < 2 then invalid_arg "Transit_stub.generate: transit_nodes < 2";
  if p.stubs_per_transit < 1 || p.stub_size < 1 then
    invalid_arg "Transit_stub.generate: empty stubs";
  let g = Graph.create ~name:"transit-stub" () in
  let transit =
    Array.init p.transit_nodes (fun _ -> Graph.add_node g (tier_attrs rng "transit"))
  in
  connect_randomly rng g transit p.transit_edge_prob p.transit_delay transit_bandwidth;
  Array.iter
    (fun t ->
      for _ = 1 to p.stubs_per_transit do
        let stub =
          Array.init p.stub_size (fun _ -> Graph.add_node g (tier_attrs rng "stub"))
        in
        connect_randomly rng g stub p.stub_edge_prob p.stub_delay stub_bandwidth;
        (* Gateway link from a random stub node up to the transit node. *)
        let gw = Rng.pick rng stub in
        ignore (Graph.add_edge g t gw (link_attrs rng p.transit_delay transit_bandwidth))
      done)
    transit;
  g
