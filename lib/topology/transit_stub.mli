(** GT-ITM-style transit–stub hierarchical topologies (Zegura, Calvert,
    Bhattacharjee — referenced by the paper among Internet topology
    models).

    A transit–stub graph has a small random transit core; each transit
    node anchors several stub domains, each itself a small random graph.
    Stub links get short delays, transit links long ones — the
    hierarchical delay structure that the paper's composite queries
    (section VII-D) are designed to match. *)

type params = {
  transit_nodes : int;  (** nodes in the transit core (>= 2) *)
  stubs_per_transit : int;  (** stub domains per transit node (>= 1) *)
  stub_size : int;  (** nodes per stub domain (>= 1) *)
  transit_edge_prob : float;  (** extra-edge probability in the core *)
  stub_edge_prob : float;  (** extra-edge probability inside a stub *)
  transit_delay : float * float;  (** avgDelay range for core links, ms *)
  stub_delay : float * float;  (** avgDelay range for stub links, ms *)
}

val default : params
(** 4 transit nodes, 3 stubs each, 8 nodes per stub. *)

val generate : Netembed_rng.Rng.t -> params -> Netembed_graph.Graph.t
(** Connected by construction: the core is a connected random graph,
    every stub domain is connected and attached to its transit node.
    Nodes carry a ["tier"] attribute ("transit" | "stub") plus
    tier-scaled ["cpuMhz"]/["memMB"] capacities; edges carry
    min/avg/maxDelay like {!Brite.generate} plus a ["bandwidth"]
    capacity (core trunks 1–10 Gbps, stub links 50–200 Mbps) — the
    attributes the resource ledger tracks. *)
