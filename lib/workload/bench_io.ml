let read_file path =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      Some s

let write_file path doc =
  let oc = open_out_bin path in
  output_string oc doc;
  close_out oc

let is_ws = function ' ' | '\t' | '\n' | '\r' -> true | _ -> false

(* Byte offsets (start, stop) of the value bound to top-level [key] in
   a JSON object document.  A hand scanner: strings (with escapes) are
   opaque, depth counts braces and brackets, and the key must sit at
   depth 1 — a nested object with the same key never matches. *)
let locate doc ~key =
  let n = String.length doc in
  let quoted = "\"" ^ key ^ "\"" in
  let qlen = String.length quoted in
  let rec skip_string i =
    (* [i] points past the opening quote *)
    if i >= n then i
    else
      match doc.[i] with
      | '\\' -> skip_string (i + 2)
      | '"' -> i + 1
      | _ -> skip_string (i + 1)
  in
  let rec skip_ws i = if i < n && is_ws doc.[i] then skip_ws (i + 1) else i in
  let skip_value i =
    if i >= n then i
    else
      match doc.[i] with
      | '"' -> skip_string (i + 1)
      | '{' | '[' ->
          let rec balanced i depth =
            if i >= n then i
            else
              match doc.[i] with
              | '"' -> balanced (skip_string (i + 1)) depth
              | '{' | '[' -> balanced (i + 1) (depth + 1)
              | '}' | ']' ->
                  if depth = 1 then i + 1 else balanced (i + 1) (depth - 1)
              | _ -> balanced (i + 1) depth
          in
          balanced (i + 1) 1
      | _ ->
          let rec scalar i =
            if i >= n then i
            else
              match doc.[i] with
              | ',' | '}' | ']' -> i
              | c when is_ws c -> i
              | _ -> scalar (i + 1)
          in
          scalar i
  in
  let rec find i depth =
    if i >= n then None
    else
      match doc.[i] with
      | '"' when depth = 1 && i + qlen <= n && String.sub doc i qlen = quoted
        -> (
          let j = skip_ws (i + qlen) in
          if j < n && doc.[j] = ':' then
            let vstart = skip_ws (j + 1) in
            Some (vstart, skip_value vstart)
          else find (skip_string (i + 1)) depth)
      | '"' -> find (skip_string (i + 1)) depth
      | '{' | '[' -> find (i + 1) (depth + 1)
      | '}' | ']' -> find (i + 1) (depth - 1)
      | _ -> find (i + 1) depth
  in
  find 0 0

let extract_section doc ~key =
  match locate doc ~key with
  | None -> None
  | Some (a, b) -> Some (String.sub doc a (b - a))

let splice_section doc ~key ~value =
  match locate doc ~key with
  | Some (a, b) ->
      String.sub doc 0 a ^ value ^ String.sub doc b (String.length doc - b)
  | None -> (
      match String.rindex_opt doc '}' with
      | None -> Printf.sprintf "{\n  %S: %s\n}\n" key value
      | Some close ->
          let rec prev_nonws i =
            if i >= 0 && is_ws doc.[i] then prev_nonws (i - 1) else i
          in
          let p = prev_nonws (close - 1) in
          let sep = if p >= 0 && doc.[p] <> '{' then ",\n  " else "\n  " in
          String.sub doc 0 (p + 1)
          ^ sep
          ^ Printf.sprintf "%S: %s" key value
          ^ "\n"
          ^ String.sub doc close (String.length doc - close))
