(** Minimal surgery on [BENCH_RESULTS.json]-style documents.

    The bench harness and the load generator both own one top-level
    section of the same results file, and each rewrites the file
    wholesale — so each needs to carry the other's section across its
    rewrite.  This module locates and replaces one top-level key of a
    JSON object textually (string- and nesting-aware), without parsing
    the rest: sections survive byte-for-byte, and no JSON library
    dependency is added. *)

val read_file : string -> string option
(** Whole file as a string; [None] when unreadable. *)

val write_file : string -> string -> unit

val extract_section : string -> key:string -> string option
(** The raw value text of top-level ["key"] in a JSON object document
    (object, array or scalar — nested braces, brackets and string
    escapes respected); [None] when absent. *)

val splice_section : string -> key:string -> value:string -> string
(** The document with top-level ["key"] bound to the raw JSON text
    [value]: replaces the existing value in place, or inserts the key
    before the object's closing brace (adding the separating comma).
    An empty or [{]-less document becomes a fresh one-key object. *)
