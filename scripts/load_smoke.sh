#!/usr/bin/env bash
# End-to-end load smoke test: drive the concurrent TCP front-end with
# the open-loop generator at modest rates and assert the run is clean
# (--strict: any protocol error fails), that the service_load section
# lands in the results JSON, and that a deliberately tiny admission
# queue sheds overload as explicit rejects rather than errors.  Used
# by CI; runnable locally from the repo root after `dune build`.
set -euo pipefail

BIN="_build/default/bin"
WORK="$(mktemp -d)"
SERVER_PID=""
trap '[ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null; rm -rf "$WORK"' EXIT

[ -x "$BIN/netembed_loadgen.exe" ] || { echo "run 'dune build' first" >&2; exit 2; }

"$BIN/netembed_cli.exe" generate --kind planetlab -n 40 --seed 2 -o "$WORK/host.graphml"

# Clean run: two worker counts, two modest rates, strict.
"$BIN/netembed_loadgen.exe" \
  --server-bin "$BIN/netembed_server.exe" \
  --host "$WORK/host.graphml" \
  --workers-list 1,2 --rates 40,80 --duration 2 --connections 2 \
  --json "$WORK/results.json" --strict \
  | tee "$WORK/loadgen.out"

# The sweep wrote a service_load section with one row per
# (workers, rate) pair.
grep -q '"service_load"' "$WORK/results.json" \
  || { echo "FAIL: no service_load section"; cat "$WORK/results.json"; exit 1; }
ROWS=$(grep -c '"sustained_rps"' "$WORK/results.json" || true)
[ "$ROWS" -eq 4 ] \
  || { echo "FAIL: expected 4 service_load rows, got $ROWS"; cat "$WORK/results.json"; exit 1; }

# Overload run: a one-slot admission queue at an aggressive rate must
# shed load as counted rejects (not protocol errors, so no --strict
# violation and a nonzero rejected total).
"$BIN/netembed_loadgen.exe" \
  --server-bin "$BIN/netembed_server.exe" \
  --host "$WORK/host.graphml" \
  --workers-list 1 --rates 300 --duration 2 --connections 2 \
  --queue-capacity 1 --strict \
  --json "$WORK/overload.json" \
  | tee "$WORK/overload.out"

grep -Eq '"rejected": [1-9]' "$WORK/overload.out" \
  || { echo "FAIL: saturated queue produced no backpressure rejects"; cat "$WORK/overload.out"; exit 1; }

# The clean sweep's rows carry the per-phase decomposition parsed off
# the phases= reply token, queue_wait included.
grep -q '"phase_mean_ms"' "$WORK/results.json" \
  || { echo "FAIL: no phase_mean_ms in service_load rows"; cat "$WORK/results.json"; exit 1; }
grep -q '"queue_wait"' "$WORK/results.json" \
  || { echo "FAIL: queue_wait missing from the phase breakdown"; cat "$WORK/results.json"; exit 1; }

# ----------------------------------------------------------------------
# Health arc against one long-lived server with a one-slot queue and a
# short fast SLO window: ready under clean load, 503 + saturated gauge
# under overload, ready again once the fast window ages out, and a
# non-200 /healthz the moment graceful drain begins.
MPORT=$(python3 -c 'import socket; s=socket.socket(); s.bind(("127.0.0.1",0)); print(s.getsockname()[1])')

"$BIN/netembed_server.exe" --host "$WORK/host.graphml" --tcp-port 0 \
  --workers 1 --queue-capacity 1 --metrics-port "$MPORT" \
  --health-fast-window 3 --runtime-sample 1 \
  --alloc-profile "$WORK/alloc.folded" \
  > "$WORK/server.out" 2>"$WORK/server.err" &
SERVER_PID=$!
for _ in $(seq 100); do grep -q LISTEN "$WORK/server.out" 2>/dev/null && break; sleep 0.1; done
PORT=$(sed -n 's/^LISTEN port=//p' "$WORK/server.out" | tr -d ' ')
[ -n "$PORT" ] || { echo "FAIL: server did not announce a TCP port"; cat "$WORK/server.err"; exit 1; }

code() { curl -s -o /dev/null -w '%{http_code}' --max-time 5 "http://127.0.0.1:$MPORT$1" || echo 000; }
health_state() {
  curl -s --max-time 5 "http://127.0.0.1:$MPORT/metrics" \
    | awk '/^netembed_health_state /{print int($2)}'
}

# Clean load leaves the server ready and live.
"$BIN/netembed_loadgen.exe" --connect "127.0.0.1:$PORT" \
  --rates 20 --duration 1 --connections 1 > /dev/null
[ "$(code /readyz)" = 200 ] || { echo "FAIL: /readyz not 200 under clean load"; exit 1; }
[ "$(code /healthz)" = 200 ] || { echo "FAIL: /healthz not 200 while serving"; exit 1; }

# Overload the one-slot queue; rejects burn the error budget, so
# readiness must flip to 503 with the health gauge at saturated (2)
# while the load is still running.
"$BIN/netembed_loadgen.exe" --connect "127.0.0.1:$PORT" \
  --rates 400 --duration 8 --connections 2 > "$WORK/healtharc.out" &
LOAD_PID=$!
SATURATED=""
for _ in $(seq 150); do
  if [ "$(code /readyz)" = 503 ] && [ "$(health_state)" -ge 2 ] 2>/dev/null; then
    SATURATED=yes
    break
  fi
  sleep 0.1
done
[ -n "$SATURATED" ] \
  || { echo "FAIL: /readyz never hit 503 with netembed_health_state >= 2 under overload"; kill "$LOAD_PID" 2>/dev/null || true; exit 1; }
wait "$LOAD_PID" || true

# Recovery: the 3 s fast window drains, hysteresis clears, 200 again.
RECOVERED=""
for _ in $(seq 300); do
  if [ "$(code /readyz)" = 200 ]; then RECOVERED=yes; break; fi
  sleep 0.1
done
[ -n "$RECOVERED" ] || { echo "FAIL: /readyz did not recover to 200 after overload"; exit 1; }

# Drain: hold a connection open so the graceful drain window is
# observable, then SIGTERM and expect liveness to report draining.
exec 9<>"/dev/tcp/127.0.0.1/$PORT"
kill -TERM "$SERVER_PID"
DRAINING=""
for _ in $(seq 100); do
  C="$(code /healthz)"
  if [ "$C" = 503 ]; then DRAINING=yes; break; fi
  [ "$C" = 000 ] && break
  sleep 0.05
done
exec 9<&- || true
exec 9>&- || true
[ -n "$DRAINING" ] || { echo "FAIL: /healthz never reported draining during shutdown"; exit 1; }
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""

# The allocation profile was dumped on shutdown and is never empty
# (folded stacks, or an explicit unsupported/no-samples marker line).
[ -s "$WORK/alloc.folded" ] \
  || { echo "FAIL: no allocation profile dumped"; exit 1; }
grep -Eq ' [0-9]+$' "$WORK/alloc.folded" \
  || { echo "FAIL: allocation profile is not folded-stack formatted"; cat "$WORK/alloc.folded"; exit 1; }

# Preserve artifacts for CI when requested.
cp "$WORK/results.json" "${LOAD_RESULTS_OUT:-/dev/null}" 2>/dev/null || true
cp "$WORK/alloc.folded" "${ALLOC_PROFILE_OUT:-/dev/null}" 2>/dev/null || true

echo "load smoke: OK (health arc: ready -> saturated -> recovered -> draining)"
