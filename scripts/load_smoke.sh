#!/usr/bin/env bash
# End-to-end load smoke test: drive the concurrent TCP front-end with
# the open-loop generator at modest rates and assert the run is clean
# (--strict: any protocol error fails), that the service_load section
# lands in the results JSON, and that a deliberately tiny admission
# queue sheds overload as explicit rejects rather than errors.  Used
# by CI; runnable locally from the repo root after `dune build`.
set -euo pipefail

BIN="_build/default/bin"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

[ -x "$BIN/netembed_loadgen.exe" ] || { echo "run 'dune build' first" >&2; exit 2; }

"$BIN/netembed_cli.exe" generate --kind planetlab -n 40 --seed 2 -o "$WORK/host.graphml"

# Clean run: two worker counts, two modest rates, strict.
"$BIN/netembed_loadgen.exe" \
  --server-bin "$BIN/netembed_server.exe" \
  --host "$WORK/host.graphml" \
  --workers-list 1,2 --rates 40,80 --duration 2 --connections 2 \
  --json "$WORK/results.json" --strict \
  | tee "$WORK/loadgen.out"

# The sweep wrote a service_load section with one row per
# (workers, rate) pair.
grep -q '"service_load"' "$WORK/results.json" \
  || { echo "FAIL: no service_load section"; cat "$WORK/results.json"; exit 1; }
ROWS=$(grep -c '"sustained_rps"' "$WORK/results.json" || true)
[ "$ROWS" -eq 4 ] \
  || { echo "FAIL: expected 4 service_load rows, got $ROWS"; cat "$WORK/results.json"; exit 1; }

# Overload run: a one-slot admission queue at an aggressive rate must
# shed load as counted rejects (not protocol errors, so no --strict
# violation and a nonzero rejected total).
"$BIN/netembed_loadgen.exe" \
  --server-bin "$BIN/netembed_server.exe" \
  --host "$WORK/host.graphml" \
  --workers-list 1 --rates 300 --duration 2 --connections 2 \
  --queue-capacity 1 --strict \
  --json "$WORK/overload.json" \
  | tee "$WORK/overload.out"

grep -Eq '"rejected": [1-9]' "$WORK/overload.out" \
  || { echo "FAIL: saturated queue produced no backpressure rejects"; cat "$WORK/overload.out"; exit 1; }

# Preserve the clean sweep for the CI artifact when requested.
cp "$WORK/results.json" "${LOAD_RESULTS_OUT:-/dev/null}" 2>/dev/null || true

echo "load smoke: OK"
