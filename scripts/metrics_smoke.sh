#!/usr/bin/env bash
# End-to-end metrics smoke test: start netembed_server with a metrics
# port, submit one LNS request over the wire protocol, scrape /metrics
# and assert the exposition reflects the request.  Also drives the
# failure-diagnostics path: an infeasible request must yield a failure
# certificate over EXPLAIN, bump netembed_unsat_total and write the
# flight-recorder dump.  The request-tracing layer is covered too: the
# sliding-window netembed_request_seconds summaries must appear on
# /metrics, the TOP verb must answer with phase stats and exemplars,
# and --chrome-trace must emit parseable trace_event JSON.  Used by
# CI; runnable locally from the repo root after `dune build`.
set -euo pipefail

PORT="${METRICS_PORT:-19911}"
BIN="_build/default/bin"
WORK="$(mktemp -d)"
trap 'kill "${SERVER_PID:-0}" "${SERVER2_PID:-0}" 2>/dev/null || true; rm -rf "$WORK"' EXIT

[ -x "$BIN/netembed_server.exe" ] || { echo "run 'dune build' first" >&2; exit 2; }

"$BIN/netembed_cli.exe" generate --kind planetlab -n 40 --seed 2 -o "$WORK/host.graphml"

cat > "$WORK/frame.txt" <<'TXT'
EMBED alg=LNS mode=first timeout=5
CONSTRAINT rEdge.avgDelay < 500
GRAPHML
<graphml><graph edgedefault="undirected">
<node id="x"/><node id="y"/>
<edge source="x" target="y"/>
</graph></graphml>
.
TXT

# Feed the frame, then hold stdin open so the server stays up while we
# scrape.
mkfifo "$WORK/in"
"$BIN/netembed_server.exe" --host "$WORK/host.graphml" --metrics-port "$PORT" \
  --flight-dump "$WORK/flight.json" \
  < "$WORK/in" > "$WORK/out" &
SERVER_PID=$!
exec 3> "$WORK/in"
cat "$WORK/frame.txt" >&3

# Wait for the answer and for the metrics listener to come up.
for _ in $(seq 50); do
  grep -q "^OK" "$WORK/out" 2>/dev/null && break
  sleep 0.2
done
grep -Eq "^OK id=[0-9]+ trace=[0-9]+ outcome=complete verdict=complete" "$WORK/out" || {
  echo "FAIL: no OK answer from server"; cat "$WORK/out"; exit 1; }

METRICS=""
for _ in $(seq 50); do
  if METRICS=$(curl -sf "http://127.0.0.1:$PORT/metrics"); then break; fi
  sleep 0.2
done
[ -n "$METRICS" ] || { echo "FAIL: could not scrape /metrics"; exit 1; }

fail() { echo "FAIL: $1"; echo "$METRICS"; exit 1; }

# Request-latency histogram is non-empty.
echo "$METRICS" | grep -Eq '^netembed_request_latency_us_count [1-9]' \
  || fail "latency histogram empty"
# The LNS run shows up on the per-algorithm search counters.
echo "$METRICS" | grep -Eq '^netembed_visited_nodes_total\{algorithm="LNS"\} [1-9]' \
  || fail "no LNS visited nodes"
echo "$METRICS" | grep -Eq '^netembed_constraint_evals_total\{algorithm="LNS"\} [1-9]' \
  || fail "no LNS constraint evaluations"
# Model-revision gauge is exported.
echo "$METRICS" | grep -Eq '^netembed_model_revision ' \
  || fail "no model revision gauge"
# Sliding-window per-phase latency summaries: the request landed inside
# the 60 s window, so the total series has a count and quantile samples,
# and the search phase was exercised.
echo "$METRICS" \
  | grep -Eq '^netembed_request_seconds_count\{phase="total",window="60s"\} [1-9]' \
  || fail "windowed total latency series empty"
echo "$METRICS" \
  | grep -Eq '^netembed_request_seconds\{phase="total",quantile="0.99",window="60s"\} ' \
  || fail "no windowed p99 quantile sample"
echo "$METRICS" \
  | grep -Eq '^netembed_request_seconds_count\{phase="search",window="60s"\} [1-9]' \
  || fail "windowed search-phase series empty"
# Lifetime per-phase totals ride on gauges.
echo "$METRICS" | grep -Eq '^netembed_phase_seconds_total\{phase="search"\} ' \
  || fail "no per-phase seconds gauge"
# JSON exposition and liveness probe answer too.
curl -sf "http://127.0.0.1:$PORT/metrics.json" | grep -q '"netembed_requests_total"' \
  || fail "/metrics.json missing requests counter"
curl -sf "http://127.0.0.1:$PORT/healthz" | grep -q '^ok' \
  || fail "/healthz not ok"

# --- resource ledger: ALLOC a small capacitated query, then UTIL ------
cat > "$WORK/alloc.txt" <<'TXT'
ALLOC alg=LNS mode=first timeout=5
CONSTRAINT rEdge.avgDelay < 500 && rEdge.bandwidth >= vEdge.bandwidth
NODECONSTRAINT rSource.cpuMhz >= vSource.cpuMhz
GRAPHML
<graphml>
<key id="cpuMhz" for="node" attr.name="cpuMhz" attr.type="double"/>
<key id="bandwidth" for="edge" attr.name="bandwidth" attr.type="double"/>
<graph edgedefault="undirected">
<node id="x"><data key="cpuMhz">50</data></node>
<node id="y"><data key="cpuMhz">50</data></node>
<edge source="x" target="y"><data key="bandwidth">1</data></edge>
</graph></graphml>
.
UTIL
.
TXT
cat "$WORK/alloc.txt" >&3

for _ in $(seq 50); do
  grep -q "^OK resources=" "$WORK/out" 2>/dev/null && break
  sleep 0.2
done
grep -Eq '^OK id=[0-9]+ .*outcome=complete.* allocation=[1-9]' "$WORK/out" \
  || { echo "FAIL: ALLOC did not commit"; cat "$WORK/out"; exit 1; }
grep -Eq '^UTIL resource=cpuMhz kind=node used=[1-9]' "$WORK/out" \
  || { echo "FAIL: UTIL shows no cpuMhz usage"; cat "$WORK/out"; exit 1; }

METRICS=$(curl -sf "http://127.0.0.1:$PORT/metrics") \
  || { echo "FAIL: could not re-scrape /metrics"; exit 1; }
# Allocation accounting counters and gauges.
echo "$METRICS" | grep -Eq '^netembed_allocations_total [1-9]' \
  || fail "no committed allocation counted"
echo "$METRICS" | grep -Eq '^netembed_allocation_rejects_total ' \
  || fail "no allocation-rejects counter"
echo "$METRICS" | grep -Eq '^netembed_admission_rejects_total ' \
  || fail "no admission-rejects counter"
echo "$METRICS" | grep -Eq '^netembed_active_allocations [1-9]' \
  || fail "no active allocation on the gauge"
# Per-resource utilization gauges carry resource/kind labels and the
# committed charge moved the node-cpu gauge off zero.
echo "$METRICS" \
  | grep -E '^netembed_resource_utilization\{' \
  | grep -E 'resource="cpuMhz"' | grep -E 'kind="node"' \
  | grep -Evq ' 0(\.0+)?$' \
  || fail "cpuMhz node utilization gauge not positive"
echo "$METRICS" | grep -E '^netembed_resource_utilization\{' \
  | grep -E 'resource="bandwidth"' | grep -Eq 'kind="edge"' \
  || fail "no bandwidth edge utilization gauge"

# --- explain: infeasible request, EXPLAIN certificate, unsat counter --
cat > "$WORK/unsat.txt" <<'TXT'
EMBED alg=ECF mode=all
CONSTRAINT true
NODECONSTRAINT rSource.cpuMhz >= 99999999
GRAPHML
<graphml><graph edgedefault="undirected">
<node id="x"/><node id="y"/>
<edge source="x" target="y"/>
</graph></graphml>
.
TXT
cat "$WORK/unsat.txt" >&3

for _ in $(seq 50); do
  grep -q "verdict=unsat" "$WORK/out" 2>/dev/null && break
  sleep 0.2
done
grep -Eq '^OK id=[0-9]+ .*verdict=unsat count=0' "$WORK/out" \
  || { echo "FAIL: infeasible request did not come back unsat"; cat "$WORK/out"; exit 1; }
UNSAT_ID=$(grep -E '^OK id=[0-9]+ .*verdict=unsat' "$WORK/out" | head -1 \
  | sed -E 's/^OK id=([0-9]+).*/\1/')

printf 'EXPLAIN %s\n.\n' "$UNSAT_ID" >&3
for _ in $(seq 50); do
  grep -q "^OK explain=$UNSAT_ID" "$WORK/out" 2>/dev/null && break
  sleep 0.2
done
grep -Eq "^OK explain=$UNSAT_ID trace=[0-9]+ verdict=unsat" "$WORK/out" \
  || { echo "FAIL: EXPLAIN returned no certificate"; cat "$WORK/out"; exit 1; }
grep -q "^PHASES " "$WORK/out" \
  || { echo "FAIL: EXPLAIN carries no phase breakdown"; cat "$WORK/out"; exit 1; }
grep -q "^TEXT blamed node" "$WORK/out" \
  || { echo "FAIL: certificate blames no query node"; cat "$WORK/out"; exit 1; }
grep -q "^TEXT   near miss " "$WORK/out" \
  || { echo "FAIL: certificate lists no near-miss host"; cat "$WORK/out"; exit 1; }
grep -Eq '^JSON \{"verdict":"unsat"' "$WORK/out" \
  || { echo "FAIL: no JSON certificate line"; cat "$WORK/out"; exit 1; }

# The flight-recorder dump (the CI artifact) was written for the
# failed request and carries the certificate.
[ -s "$WORK/flight.json" ] \
  || { echo "FAIL: no flight-recorder dump written"; exit 1; }
grep -q '"verdict":"unsat"' "$WORK/flight.json" \
  || { echo "FAIL: flight dump lacks the certificate"; cat "$WORK/flight.json"; exit 1; }
cp "$WORK/flight.json" "${FLIGHT_DUMP_OUT:-/dev/null}" 2>/dev/null || true

METRICS=$(curl -sf "http://127.0.0.1:$PORT/metrics") \
  || { echo "FAIL: could not re-scrape /metrics"; exit 1; }
echo "$METRICS" | grep -Eq '^netembed_unsat_total\{cause="node_constraint"\} [1-9]' \
  || fail "netembed_unsat_total did not increment for the unsat request"
echo "$METRICS" | grep -Eq '^netembed_blame_eliminations_total\{cause="node_constraint"\} [1-9]' \
  || fail "no blame-by-constraint counter"

# --- TOP: phase-latency triage report over the wire ------------------
# The unsat request above is retained in the diagnostics ring, so the
# report carries both the per-phase table and at least one exemplar.
printf 'TOP\n.\n' >&3
for _ in $(seq 50); do
  grep -q "^OK phases=" "$WORK/out" 2>/dev/null && break
  sleep 0.2
done
grep -Eq '^OK phases=[1-9][0-9]* worst=[0-9]+ window=60' "$WORK/out" \
  || { echo "FAIL: TOP returned no report header"; cat "$WORK/out"; exit 1; }
grep -Eq '^PHASE name=search total=[0-9.]+ count=[0-9]+ p50=' "$WORK/out" \
  || { echo "FAIL: TOP lists no search phase stats"; cat "$WORK/out"; exit 1; }
grep -Eq '^SLOW id=[0-9]+ trace=[0-9]+ verdict=' "$WORK/out" \
  || { echo "FAIL: TOP lists no slow-request exemplar"; cat "$WORK/out"; exit 1; }

# --- parallel path + filter cache: second server on two domains ------
# The blame/EXPLAIN assertions above need the sequential path (the
# parallel path returns no certificate), so the work-stealing service
# and its counters are exercised by a separate instance.
PORT2=$((PORT + 1))
mkfifo "$WORK/in2"
"$BIN/netembed_server.exe" --host "$WORK/host.graphml" --metrics-port "$PORT2" \
  --domains 2 --chrome-trace "$WORK/chrome.json" < "$WORK/in2" > "$WORK/out2" &
SERVER2_PID=$!
exec 4> "$WORK/in2"

cat > "$WORK/par.txt" <<'TXT'
EMBED alg=ECF mode=all timeout=10
CONSTRAINT rEdge.avgDelay < 100
GRAPHML
<graphml><graph edgedefault="undirected">
<node id="x"/><node id="y"/>
<edge source="x" target="y"/>
</graph></graphml>
.
TXT
# The identical frame twice: the second submit must hit the filter
# cache (same model revision, same query signature).  Scrape between
# the two so the warm submit's effect on the bytecode-compile counter
# is observable in isolation.
cat "$WORK/par.txt" >&4

for _ in $(seq 100); do
  grep -q '^OK' "$WORK/out2" 2>/dev/null && break
  sleep 0.2
done
COLD=""
for _ in $(seq 50); do
  if COLD=$(curl -sf "http://127.0.0.1:$PORT2/metrics"); then break; fi
  sleep 0.2
done
[ -n "$COLD" ] || { echo "FAIL: could not scrape two-domain /metrics"; exit 1; }
# The cold submit compiled its constraints to bytecode.
echo "$COLD" | grep -Eq '^netembed_expr_compiles_total [1-9]' \
  || { echo "FAIL: no bytecode compiles after the cold submit"; echo "$COLD"; exit 1; }
COMPILES_COLD=$(echo "$COLD" | sed -nE 's/^netembed_expr_compiles_total ([0-9]+).*/\1/p')

cat "$WORK/par.txt" >&4
for _ in $(seq 100); do
  [ "$(grep -c '^OK' "$WORK/out2" 2>/dev/null || true)" -ge 2 ] && break
  sleep 0.2
done
[ "$(grep -Ec '^OK id=[0-9]+ .*outcome=complete' "$WORK/out2" || true)" -ge 2 ] \
  || { echo "FAIL: two-domain server did not answer both requests"; cat "$WORK/out2"; exit 1; }

METRICS=$(curl -sf "http://127.0.0.1:$PORT2/metrics") \
  || { echo "FAIL: could not scrape two-domain /metrics"; exit 1; }
# Cold submit missed, warm submit hit.
echo "$METRICS" | grep -Eq '^netembed_filter_cache_misses_total [1-9]' \
  || fail "no filter-cache miss on the cold submit"
echo "$METRICS" | grep -Eq '^netembed_filter_cache_hits_total [1-9]' \
  || fail "no filter-cache hit on the warm submit"
# The cache entry carries the compiled programs: the warm submit must
# not have compiled anything.
COMPILES_WARM=$(echo "$METRICS" | sed -nE 's/^netembed_expr_compiles_total ([0-9]+).*/\1/p')
[ "$COMPILES_WARM" = "$COMPILES_COLD" ] \
  || fail "warm submit recompiled bytecode ($COMPILES_COLD -> $COMPILES_WARM)"
# The steal counter series is exposed (pre-registered; its value
# depends on scheduling, so only presence is asserted).
echo "$METRICS" | grep -Eq '^netembed_steals_total [0-9]' \
  || fail "no steals counter series"
# The parallel path merged the per-domain search counters.
echo "$METRICS" | grep -Eq '^netembed_visited_nodes_total\{algorithm="ECF"\} [1-9]' \
  || fail "parallel ECF visited nodes missing"

# --- Chrome trace: --chrome-trace wrote well-formed trace_event JSON --
# The two-domain server traces every request; the dump is the latest
# request's buffer, including the spans the worker domains recorded.
[ -s "$WORK/chrome.json" ] \
  || { echo "FAIL: no Chrome trace written"; exit 1; }
python3 -m json.tool "$WORK/chrome.json" > /dev/null \
  || { echo "FAIL: Chrome trace is not valid JSON"; cat "$WORK/chrome.json"; exit 1; }
grep -q '"traceEvents"' "$WORK/chrome.json" \
  || { echo "FAIL: Chrome trace lacks traceEvents"; cat "$WORK/chrome.json"; exit 1; }
grep -q '"trace_id"' "$WORK/chrome.json" \
  || { echo "FAIL: Chrome trace spans carry no trace id"; exit 1; }
cp "$WORK/chrome.json" "${CHROME_TRACE_OUT:-/dev/null}" 2>/dev/null || true

exec 3>&-
exec 4>&-
wait "$SERVER_PID" 2>/dev/null || true
wait "$SERVER2_PID" 2>/dev/null || true
echo "metrics smoke: OK"
