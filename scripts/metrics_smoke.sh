#!/usr/bin/env bash
# End-to-end metrics smoke test: start netembed_server with a metrics
# port, submit one LNS request over the wire protocol, scrape /metrics
# and assert the exposition reflects the request.  Used by CI; runnable
# locally from the repo root after `dune build`.
set -euo pipefail

PORT="${METRICS_PORT:-19911}"
BIN="_build/default/bin"
WORK="$(mktemp -d)"
trap 'kill "${SERVER_PID:-0}" 2>/dev/null || true; rm -rf "$WORK"' EXIT

[ -x "$BIN/netembed_server.exe" ] || { echo "run 'dune build' first" >&2; exit 2; }

"$BIN/netembed_cli.exe" generate --kind planetlab -n 40 --seed 2 -o "$WORK/host.graphml"

cat > "$WORK/frame.txt" <<'TXT'
EMBED alg=LNS mode=first timeout=5
CONSTRAINT rEdge.avgDelay < 500
GRAPHML
<graphml><graph edgedefault="undirected">
<node id="x"/><node id="y"/>
<edge source="x" target="y"/>
</graph></graphml>
.
TXT

# Feed the frame, then hold stdin open so the server stays up while we
# scrape.
mkfifo "$WORK/in"
"$BIN/netembed_server.exe" --host "$WORK/host.graphml" --metrics-port "$PORT" \
  < "$WORK/in" > "$WORK/out" &
SERVER_PID=$!
exec 3> "$WORK/in"
cat "$WORK/frame.txt" >&3

# Wait for the answer and for the metrics listener to come up.
for _ in $(seq 50); do
  grep -q "^OK" "$WORK/out" 2>/dev/null && break
  sleep 0.2
done
grep -q "^OK outcome=complete" "$WORK/out" || {
  echo "FAIL: no OK answer from server"; cat "$WORK/out"; exit 1; }

METRICS=""
for _ in $(seq 50); do
  if METRICS=$(curl -sf "http://127.0.0.1:$PORT/metrics"); then break; fi
  sleep 0.2
done
[ -n "$METRICS" ] || { echo "FAIL: could not scrape /metrics"; exit 1; }

fail() { echo "FAIL: $1"; echo "$METRICS"; exit 1; }

# Request-latency histogram is non-empty.
echo "$METRICS" | grep -Eq '^netembed_request_latency_us_count [1-9]' \
  || fail "latency histogram empty"
# The LNS run shows up on the per-algorithm search counters.
echo "$METRICS" | grep -Eq '^netembed_visited_nodes_total\{algorithm="LNS"\} [1-9]' \
  || fail "no LNS visited nodes"
echo "$METRICS" | grep -Eq '^netembed_constraint_evals_total\{algorithm="LNS"\} [1-9]' \
  || fail "no LNS constraint evaluations"
# Model-revision gauge is exported.
echo "$METRICS" | grep -Eq '^netembed_model_revision ' \
  || fail "no model revision gauge"
# JSON exposition and liveness probe answer too.
curl -sf "http://127.0.0.1:$PORT/metrics.json" | grep -q '"netembed_requests_total"' \
  || fail "/metrics.json missing requests counter"
curl -sf "http://127.0.0.1:$PORT/healthz" | grep -q '^ok' \
  || fail "/healthz not ok"

exec 3>&-
wait "$SERVER_PID" 2>/dev/null || true
echo "metrics smoke: OK"
