#!/usr/bin/env bash
# End-to-end metrics smoke test: start netembed_server with a metrics
# port, submit one LNS request over the wire protocol, scrape /metrics
# and assert the exposition reflects the request.  Used by CI; runnable
# locally from the repo root after `dune build`.
set -euo pipefail

PORT="${METRICS_PORT:-19911}"
BIN="_build/default/bin"
WORK="$(mktemp -d)"
trap 'kill "${SERVER_PID:-0}" 2>/dev/null || true; rm -rf "$WORK"' EXIT

[ -x "$BIN/netembed_server.exe" ] || { echo "run 'dune build' first" >&2; exit 2; }

"$BIN/netembed_cli.exe" generate --kind planetlab -n 40 --seed 2 -o "$WORK/host.graphml"

cat > "$WORK/frame.txt" <<'TXT'
EMBED alg=LNS mode=first timeout=5
CONSTRAINT rEdge.avgDelay < 500
GRAPHML
<graphml><graph edgedefault="undirected">
<node id="x"/><node id="y"/>
<edge source="x" target="y"/>
</graph></graphml>
.
TXT

# Feed the frame, then hold stdin open so the server stays up while we
# scrape.
mkfifo "$WORK/in"
"$BIN/netembed_server.exe" --host "$WORK/host.graphml" --metrics-port "$PORT" \
  < "$WORK/in" > "$WORK/out" &
SERVER_PID=$!
exec 3> "$WORK/in"
cat "$WORK/frame.txt" >&3

# Wait for the answer and for the metrics listener to come up.
for _ in $(seq 50); do
  grep -q "^OK" "$WORK/out" 2>/dev/null && break
  sleep 0.2
done
grep -q "^OK outcome=complete" "$WORK/out" || {
  echo "FAIL: no OK answer from server"; cat "$WORK/out"; exit 1; }

METRICS=""
for _ in $(seq 50); do
  if METRICS=$(curl -sf "http://127.0.0.1:$PORT/metrics"); then break; fi
  sleep 0.2
done
[ -n "$METRICS" ] || { echo "FAIL: could not scrape /metrics"; exit 1; }

fail() { echo "FAIL: $1"; echo "$METRICS"; exit 1; }

# Request-latency histogram is non-empty.
echo "$METRICS" | grep -Eq '^netembed_request_latency_us_count [1-9]' \
  || fail "latency histogram empty"
# The LNS run shows up on the per-algorithm search counters.
echo "$METRICS" | grep -Eq '^netembed_visited_nodes_total\{algorithm="LNS"\} [1-9]' \
  || fail "no LNS visited nodes"
echo "$METRICS" | grep -Eq '^netembed_constraint_evals_total\{algorithm="LNS"\} [1-9]' \
  || fail "no LNS constraint evaluations"
# Model-revision gauge is exported.
echo "$METRICS" | grep -Eq '^netembed_model_revision ' \
  || fail "no model revision gauge"
# JSON exposition and liveness probe answer too.
curl -sf "http://127.0.0.1:$PORT/metrics.json" | grep -q '"netembed_requests_total"' \
  || fail "/metrics.json missing requests counter"
curl -sf "http://127.0.0.1:$PORT/healthz" | grep -q '^ok' \
  || fail "/healthz not ok"

# --- resource ledger: ALLOC a small capacitated query, then UTIL ------
cat > "$WORK/alloc.txt" <<'TXT'
ALLOC alg=LNS mode=first timeout=5
CONSTRAINT rEdge.avgDelay < 500 && rEdge.bandwidth >= vEdge.bandwidth
NODECONSTRAINT rSource.cpuMhz >= vSource.cpuMhz
GRAPHML
<graphml>
<key id="cpuMhz" for="node" attr.name="cpuMhz" attr.type="double"/>
<key id="bandwidth" for="edge" attr.name="bandwidth" attr.type="double"/>
<graph edgedefault="undirected">
<node id="x"><data key="cpuMhz">50</data></node>
<node id="y"><data key="cpuMhz">50</data></node>
<edge source="x" target="y"><data key="bandwidth">1</data></edge>
</graph></graphml>
.
UTIL
.
TXT
cat "$WORK/alloc.txt" >&3

for _ in $(seq 50); do
  grep -q "^OK resources=" "$WORK/out" 2>/dev/null && break
  sleep 0.2
done
grep -Eq '^OK outcome=complete.* allocation=[1-9]' "$WORK/out" \
  || { echo "FAIL: ALLOC did not commit"; cat "$WORK/out"; exit 1; }
grep -Eq '^UTIL resource=cpuMhz kind=node used=[1-9]' "$WORK/out" \
  || { echo "FAIL: UTIL shows no cpuMhz usage"; cat "$WORK/out"; exit 1; }

METRICS=$(curl -sf "http://127.0.0.1:$PORT/metrics") \
  || { echo "FAIL: could not re-scrape /metrics"; exit 1; }
# Allocation accounting counters and gauges.
echo "$METRICS" | grep -Eq '^netembed_allocations_total [1-9]' \
  || fail "no committed allocation counted"
echo "$METRICS" | grep -Eq '^netembed_allocation_rejects_total ' \
  || fail "no allocation-rejects counter"
echo "$METRICS" | grep -Eq '^netembed_admission_rejects_total ' \
  || fail "no admission-rejects counter"
echo "$METRICS" | grep -Eq '^netembed_active_allocations [1-9]' \
  || fail "no active allocation on the gauge"
# Per-resource utilization gauges carry resource/kind labels and the
# committed charge moved the node-cpu gauge off zero.
echo "$METRICS" \
  | grep -E '^netembed_resource_utilization\{' \
  | grep -E 'resource="cpuMhz"' | grep -E 'kind="node"' \
  | grep -Evq ' 0(\.0+)?$' \
  || fail "cpuMhz node utilization gauge not positive"
echo "$METRICS" | grep -E '^netembed_resource_utilization\{' \
  | grep -E 'resource="bandwidth"' | grep -Eq 'kind="edge"' \
  || fail "no bandwidth edge utilization gauge"

exec 3>&-
wait "$SERVER_PID" 2>/dev/null || true
echo "metrics smoke: OK"
