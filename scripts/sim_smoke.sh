#!/usr/bin/env bash
# Online churn simulator smoke test: a short-horizon three-policy run
# on a small capacitated substrate under --strict (nonzero accepts and
# zero invariant violations or the binary exits 1), then assert the
# online_churn section landed in the results JSON next to a
# pre-existing section, that it carries one row per (policy, rate)
# cell with acceptance curves, and that the document is valid JSON.
# Used by CI; runnable locally from the repo root after `dune build`.
set -euo pipefail

BIN="_build/default/bin"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

[ -x "$BIN/netembed_sim.exe" ] || { echo "run 'dune build' first" >&2; exit 2; }

# Seed the results file with a neighbour section the splice must
# byte-preserve.
printf '{\n  "benches": [1, 2]\n}\n' > "$WORK/results.json"

# Deterministic short run: 30 virtual seconds, well under 30 s of wall
# clock, all three policies at two offered loads.
"$BIN/netembed_sim.exe" \
  --substrate clique --nodes 8 --seed 11 \
  --policy all --rates 1.0,2.0 --horizon 30 \
  --strict --json "$WORK/results.json" \
  | tee "$WORK/sim.out"

# --strict already enforced nonzero accepts and zero invariant
# violations per cell; double-check the summary text agrees.
grep -q 'invariant violations  0' "$WORK/sim.out" \
  || { echo "FAIL: no clean invariant line in summary"; exit 1; }
if grep -E 'invariant violations  [1-9]' "$WORK/sim.out"; then
  echo "FAIL: simulator reported invariant violations"; exit 1
fi

# The online_churn section landed without disturbing its neighbour.
grep -q '"online_churn"' "$WORK/results.json" \
  || { echo "FAIL: no online_churn section"; cat "$WORK/results.json"; exit 1; }
grep -q '"benches"' "$WORK/results.json" \
  || { echo "FAIL: splice clobbered the benches section"; exit 1; }

# One row per (policy, rate) cell, each with an acceptance curve.
ROWS=$(grep -c '"acceptance_rate"' "$WORK/results.json" || true)
[ "$ROWS" -eq 6 ] \
  || { echo "FAIL: expected 6 online_churn rows, got $ROWS"; cat "$WORK/results.json"; exit 1; }
grep -q '"acceptance_curve"' "$WORK/results.json" \
  || { echo "FAIL: rows carry no acceptance_curve samples"; exit 1; }

# The whole document must still parse as JSON after the splice.
python3 -m json.tool "$WORK/results.json" > /dev/null \
  || { echo "FAIL: results.json is not valid JSON"; exit 1; }

# Preserve the artifact for CI when requested.
cp "$WORK/results.json" "${SIM_RESULTS_OUT:-/dev/null}" 2>/dev/null || true

echo "sim smoke: OK (3 policies x 2 rates, strict, online_churn spliced)"
