Generate a hosting network, inspect it, and embed a query end to end.

  $ ../../bin/netembed_cli.exe generate --kind planetlab -n 40 --seed 2 -o host.graphml
  wrote planetlab-40: 40 nodes, 532 edges (undirected) to host.graphml

  $ ../../bin/netembed_cli.exe info host.graphml | head -1
  planetlab-40: 40 nodes, 532 edges (undirected)

Build a small query by hand:

  $ cat > query.graphml <<'XML'
  > <graphml>
  >   <key id="d0" for="edge" attr.name="maxDelay" attr.type="double"/>
  >   <graph id="Q" edgedefault="undirected">
  >     <node id="a"/><node id="b"/><node id="c"/>
  >     <edge source="a" target="b"><data key="d0">400</data></edge>
  >     <edge source="b" target="c"><data key="d0">400</data></edge>
  >   </graph>
  > </graphml>
  > XML

  $ ../../bin/netembed_cli.exe embed --host host.graphml --query query.graphml \
  >   --constraint 'rEdge.avgDelay <= vEdge.maxDelay' --algorithm ecf --mode atmost:1 \
  >   | head -1 | sed -e 's/elapsed=[0-9.]*/elapsed=MS/' -e 's/ phases=[^ ]*//'
  OK id=1 trace=1 outcome=complete verdict=complete count=1 elapsed=MS

A malformed constraint is reported, not crashed on:

  $ ../../bin/netembed_cli.exe embed --host host.graphml --query query.graphml \
  >   --constraint 'rEdge.>>>' 2>&1 | head -1; echo "exit=$?"
  netembed: edge constraint: parse error at line 1, column 7 (at >): expected an attribute name after '.'
  exit=0

explain --dump-bytecode disassembles the compiled program of each
per-query-edge specialized constraint (note the folded constant and the
per-edge slot table) and of the node constraint:

  $ ../../bin/netembed_cli.exe explain --host host.graphml --query query.graphml \
  >   --constraint 'rEdge.avgDelay <= vEdge.maxDelay && rSource.up' \
  >   --node-constraint 'rSource.cpuMhz >= 100 * 2' --dump-bytecode 2>/dev/null \
  >   | awk 'NF == 0 { exit } { print }'
  constraint: rEdge.avgDelay <= vEdge.maxDelay && rSource.up
  ; query edge 0 (0 -> 1), specialized and compiled:
  ;; source: rEdge.avgDelay <= 400 && rSource.up
  ;; stack: 2 cells, handlers: 0
  ;; slot s0 = rEdge.avgDelay
  ;; slot s1 = rSource.up
  ;; const n0 = 400
     0: LOAD       s0  ; rEdge.avgDelay
     2: PUSH_NUM   n0  ; 400
     4: LE
     5: JFALSE     @12
     7: LOAD       s1  ; rSource.up
     9: BOOLIFY
    10: JMP        @13
    12: PUSH_FALSE
    13: HALT
  ; query edge 1 (1 -> 2), specialized and compiled:
  ;; source: rEdge.avgDelay <= 400 && rSource.up
  ;; stack: 2 cells, handlers: 0
  ;; slot s0 = rEdge.avgDelay
  ;; slot s1 = rSource.up
  ;; const n0 = 400
     0: LOAD       s0  ; rEdge.avgDelay
     2: PUSH_NUM   n0  ; 400
     4: LE
     5: JFALSE     @12
     7: LOAD       s1  ; rSource.up
     9: BOOLIFY
    10: JMP        @13
    12: PUSH_FALSE
    13: HALT
  node constraint: rSource.cpuMhz >= 100 * 2
  ; compiled:
  ;; source: rSource.cpuMhz >= 200
  ;; stack: 2 cells, handlers: 0
  ;; slot s0 = rSource.cpuMhz
  ;; const n0 = 200
     0: LOAD       s0  ; rSource.cpuMhz
     2: PUSH_NUM   n0  ; 200
     4: GE
     5: HALT


The wire server answers framed requests over stdin/stdout:

  $ cat > frame.txt <<'TXT'
  > EMBED alg=LNS mode=first timeout=5
  > CONSTRAINT rEdge.avgDelay < 500
  > GRAPHML
  > <graphml><graph edgedefault="undirected">
  > <node id="x"/><node id="y"/>
  > <edge source="x" target="y"/>
  > </graph></graphml>
  > .
  > TXT

  $ ../../bin/netembed_server.exe --host host.graphml < frame.txt | head -1 | sed -e 's/elapsed=[0-9.]*/elapsed=MS/' -e 's/ phases=[^ ]*//'
  OK id=1 trace=1 outcome=complete verdict=complete count=1 elapsed=MS

Conversion between GraphML and BRITE formats round-trips:

  $ ../../bin/netembed_cli.exe generate --kind brite-ba -n 20 --seed 4 -o ba.graphml
  wrote brite-ba-20: 20 nodes, 37 edges (undirected) to ba.graphml

  $ ../../bin/netembed_cli.exe convert ba.graphml ba.brite
  converted brite-ba-20: 20 nodes, 37 edges (undirected): ba.graphml -> ba.brite

  $ ../../bin/netembed_cli.exe convert ba.brite back.graphml
  converted brite-import: 20 nodes, 37 edges (undirected): ba.brite -> back.graphml

  $ head -1 ba.brite
  Topology: ( 20 Nodes, 37 Edges )

Symmetry compaction and cost optimization on the CLI:

  $ ../../bin/netembed_cli.exe embed --host host.graphml --query query.graphml \
  >   --constraint 'rEdge.avgDelay <= vEdge.maxDelay' --mode atmost:20 \
  >   --dedupe-symmetry --optimize total-delay \
  >   | head -1 | sed -e 's/elapsed=[0-9.]*/elapsed=MS/' -e 's/ phases=[^ ]*//'
  OK id=1 trace=1 outcome=complete verdict=complete count=1 elapsed=MS

--stats prints one JSON telemetry snapshot on stderr; LNS reports its
lazy constraint evaluations on it (nonzero), and the search counters
are deterministic for a fixed host:

  $ ../../bin/netembed_cli.exe embed --host host.graphml --query query.graphml \
  >   --constraint 'rEdge.avgDelay <= vEdge.maxDelay' --algorithm lns --mode atmost:1 \
  >   --stats --trace trace.jsonl 2>&1 >/dev/null \
  >   | grep -o '"algorithm":"LNS"\|"constraint_evals":[1-9][0-9]*' | sort -u | head -2
  "algorithm":"LNS"
  "constraint_evals":48

--trace wrote matching span enter/exit events:

  $ grep -c '"ev":"enter"' trace.jsonl > enters; grep -c '"ev":"exit"' trace.jsonl > exits
  $ diff enters exits && grep -q '"span":"descent"' trace.jsonl && echo spans-balanced
  spans-balanced

watch polls a running TCP server's HEALTH and TOP verbs; --once takes a
single snapshot (the health line is all-zero before any embed traffic,
and queue_wait is reported as a phase):

  $ ../../bin/netembed_server.exe --host host.graphml --tcp-port 0 --workers 1 \
  >   >server.out 2>/dev/null &
  $ SERVER_PID=$!
  $ for _ in $(seq 100); do grep -q LISTEN server.out 2>/dev/null && break; sleep 0.1; done
  $ PORT=$(sed -n 's/^LISTEN port=//p' server.out | tr -d ' ')

  $ ../../bin/netembed_cli.exe watch --connect 127.0.0.1:$PORT --once \
  >   | sed -e 's|queue=[0-9]*/[0-9]*|queue=D/C|' | head -2
  HEALTH state=healthy code=0 fast_p99=0.000 slow_p99=0.000 fast_err=0.0000 slow_err=0.0000 queue=D/C
  TOP phases=9 worst=0 window=60

  $ ../../bin/netembed_cli.exe watch --connect 127.0.0.1:$PORT --once \
  >   | grep -c 'name=queue_wait'
  1

  $ kill $SERVER_PID && wait $SERVER_PID 2>/dev/null || true
