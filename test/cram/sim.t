The online churn simulator is deterministic in the seed: a tiny
substrate and a short horizon pin the whole summary table.

  $ ../../bin/netembed_sim.exe --substrate clique --nodes 6 --horizon 60 \
  >   --rates 1.5 --policy all --seed 7
  online churn simulation
    policy                admit_greedy
    seed                  7
    horizon               60 virtual s (rate 1.5/s)
    arrivals              102
    accepted              63 (61.8%)
    rejected              39
    retry accepts         0
    departures            63
    migrations            0 (0 rolled back)
    defrag passes         0
    revenue acceptance    61.0%
    mean cpu utilization  26.6%
    peak fragmentation    0.4188
    mean fragmentation    0.1771
    final fragmentation   0.0000
    invariant violations  0
  online churn simulation
    policy                no_defrag
    seed                  7
    horizon               60 virtual s (rate 1.5/s)
    arrivals              102
    accepted              62 (60.8%)
    rejected              40
    retry accepts         0
    departures            62
    migrations            0 (0 rolled back)
    defrag passes         0
    revenue acceptance    62.0%
    mean cpu utilization  27.0%
    peak fragmentation    0.4177
    mean fragmentation    0.1961
    final fragmentation   0.0000
    invariant violations  0
  online churn simulation
    policy                defrag_threshold
    seed                  7
    horizon               60 virtual s (rate 1.5/s)
    arrivals              102
    accepted              62 (60.8%)
    rejected              40
    retry accepts         2
    departures            62
    migrations            6 (0 rolled back)
    defrag passes         12
    revenue acceptance    62.4%
    mean cpu utilization  27.3%
    peak fragmentation    0.4203
    mean fragmentation    0.1975
    final fragmentation   0.0000
    invariant violations  0

The JSON section splices into a results document and survives a
re-splice next to other sections:

  $ printf '{\n  "benches": [1, 2]\n}\n' > results.json
  $ ../../bin/netembed_sim.exe --substrate clique --nodes 6 --horizon 30 \
  >   --rates 1.5 --policy no_defrag --seed 7 --quiet --json results.json
  # online_churn section written to results.json
  $ grep -c '"benches"' results.json
  1
  $ grep -o '"policy": "[a-z_]*"' results.json
  "policy": "no_defrag"
