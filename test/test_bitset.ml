module Bitset = Netembed_bitset.Bitset

let check = Alcotest.check

let test_empty () =
  let s = Bitset.create 100 in
  check Alcotest.bool "empty" true (Bitset.is_empty s);
  check Alcotest.int "cardinal" 0 (Bitset.cardinal s);
  check Alcotest.bool "mem" false (Bitset.mem s 5);
  check (Alcotest.option Alcotest.int) "choose" None (Bitset.choose s)

let test_add_remove () =
  let s = Bitset.create 200 in
  Bitset.add s 0;
  Bitset.add s 61;
  Bitset.add s 62;
  Bitset.add s 63;
  Bitset.add s 199;
  check Alcotest.int "cardinal" 5 (Bitset.cardinal s);
  check Alcotest.bool "mem 62 (word boundary)" true (Bitset.mem s 62);
  check Alcotest.bool "mem 199" true (Bitset.mem s 199);
  check Alcotest.bool "not mem 100" false (Bitset.mem s 100);
  Bitset.remove s 62;
  check Alcotest.bool "removed" false (Bitset.mem s 62);
  check Alcotest.int "cardinal after remove" 4 (Bitset.cardinal s);
  (* Idempotent add. *)
  Bitset.add s 0;
  check Alcotest.int "idempotent" 4 (Bitset.cardinal s);
  Alcotest.check_raises "out of universe"
    (Invalid_argument "Bitset: index out of universe") (fun () -> Bitset.add s 200)

let test_full () =
  List.iter
    (fun n ->
      let s = Bitset.full n in
      check Alcotest.int (Printf.sprintf "full %d" n) n (Bitset.cardinal s);
      if n > 0 then begin
        check Alcotest.bool "first" true (Bitset.mem s 0);
        check Alcotest.bool "last" true (Bitset.mem s (n - 1))
      end)
    [ 0; 1; 61; 62; 63; 124; 300 ]

let test_elements_ordered () =
  let s = Bitset.of_list 150 [ 149; 3; 77; 0; 62 ] in
  check Alcotest.(list int) "ascending" [ 0; 3; 62; 77; 149 ] (Bitset.elements s)

let test_nth () =
  let s = Bitset.of_list 150 [ 5; 62; 63; 130 ] in
  check (Alcotest.option Alcotest.int) "0th" (Some 5) (Bitset.nth s 0);
  check (Alcotest.option Alcotest.int) "1st" (Some 62) (Bitset.nth s 1);
  check (Alcotest.option Alcotest.int) "2nd" (Some 63) (Bitset.nth s 2);
  check (Alcotest.option Alcotest.int) "3rd" (Some 130) (Bitset.nth s 3);
  check (Alcotest.option Alcotest.int) "4th" None (Bitset.nth s 4);
  check (Alcotest.option Alcotest.int) "negative" None (Bitset.nth s (-1))

let test_universe_mismatch () =
  let a = Bitset.create 10 and b = Bitset.create 20 in
  let mismatch = Invalid_argument "Bitset: universe mismatch" in
  Alcotest.check_raises "inter_into" mismatch (fun () -> Bitset.inter_into ~dst:a b);
  Alcotest.check_raises "blit" mismatch (fun () -> Bitset.blit ~dst:a b);
  Alcotest.check_raises "inter_cardinal" mismatch (fun () ->
      ignore (Bitset.inter_cardinal a b))

let test_next_set_bit () =
  (* Tail-word masking edge cases: universes straddling the 62-bit word
     size and the conventional 63/64/65 boundaries. *)
  List.iter
    (fun n ->
      let empty = Bitset.create n in
      check Alcotest.int (Printf.sprintf "empty n=%d" n) (-1) (Bitset.next_set_bit empty 0);
      let s = Bitset.full n in
      (* Walking with next_set_bit enumerates exactly [0 .. n-1]. *)
      let count = ref 0 and i = ref 0 in
      let continue = ref true in
      while !continue do
        match Bitset.next_set_bit s !i with
        | -1 -> continue := false
        | j ->
            check Alcotest.int (Printf.sprintf "full n=%d step" n) !count j;
            incr count;
            i := j + 1
      done;
      check Alcotest.int (Printf.sprintf "full n=%d count" n) n !count;
      check Alcotest.int (Printf.sprintf "past end n=%d" n) (-1) (Bitset.next_set_bit s n);
      check Alcotest.int
        (Printf.sprintf "negative start n=%d" n)
        (if n = 0 then -1 else 0)
        (Bitset.next_set_bit s (-5)))
    [ 0; 1; 61; 62; 63; 64; 65; 124; 130 ];
  let s = Bitset.of_list 130 [ 3; 61; 62; 63; 129 ] in
  check Alcotest.int "from 0" 3 (Bitset.next_set_bit s 0);
  check Alcotest.int "from 3" 3 (Bitset.next_set_bit s 3);
  check Alcotest.int "from 4 crosses into word tail" 61 (Bitset.next_set_bit s 4);
  check Alcotest.int "word boundary 62" 62 (Bitset.next_set_bit s 62);
  check Alcotest.int "from 64" 129 (Bitset.next_set_bit s 64);
  check Alcotest.int "last element" 129 (Bitset.next_set_bit s 129);
  check Alcotest.int "exhausted" (-1) (Bitset.next_set_bit s 130)

let test_iter_from () =
  let s = Bitset.of_list 130 [ 0; 5; 61; 62; 100; 129 ] in
  let collect i = List.rev (let acc = ref [] in Bitset.iter_from (fun x -> acc := x :: !acc) s i; !acc) in
  check Alcotest.(list int) "from 0" [ 0; 5; 61; 62; 100; 129 ] (collect 0);
  check Alcotest.(list int) "from 5" [ 5; 61; 62; 100; 129 ] (collect 5);
  check Alcotest.(list int) "from 6" [ 61; 62; 100; 129 ] (collect 6);
  check Alcotest.(list int) "from 62 (word boundary)" [ 62; 100; 129 ] (collect 62);
  check Alcotest.(list int) "from 130" [] (collect 130);
  check Alcotest.(list int) "negative behaves like 0" [ 0; 5; 61; 62; 100; 129 ] (collect (-1));
  (* Empty universes never call f. *)
  Bitset.iter_from (fun _ -> Alcotest.fail "universe 0 visited") (Bitset.create 0) 0

let test_inter_cardinal_and_blit () =
  List.iter
    (fun n ->
      let evens = Bitset.of_list n (List.filter (fun i -> i mod 2 = 0) (List.init n Fun.id)) in
      let all = Bitset.full n in
      check Alcotest.int
        (Printf.sprintf "inter_cardinal full n=%d" n)
        (Bitset.cardinal evens)
        (Bitset.inter_cardinal evens all);
      let dst = Bitset.create n in
      Bitset.blit ~dst all;
      check Alcotest.bool (Printf.sprintf "blit n=%d" n) true (Bitset.equal dst all);
      (* blit must not smear bits past the universe: a subsequent
         complement-style op sees a clean tail word. *)
      check Alcotest.int (Printf.sprintf "blit cardinal n=%d" n) n (Bitset.cardinal dst))
    [ 0; 1; 63; 64; 65 ]

(* Model-based property tests: compare against sorted-int-list sets. *)

let gen_set n =
  QCheck.Gen.(
    map
      (fun l -> List.sort_uniq compare (List.filter (fun x -> x >= 0 && x < n) l))
      (small_list (int_range 0 (n - 1))))

let arbitrary_pair n =
  QCheck.make
    ~print:(fun (a, b) ->
      Printf.sprintf "(%s, %s)"
        (String.concat "," (List.map string_of_int a))
        (String.concat "," (List.map string_of_int b)))
    QCheck.Gen.(pair (gen_set n) (gen_set n))

let model_test name op list_op =
  QCheck.Test.make ~name ~count:500 (arbitrary_pair 130) (fun (la, lb) ->
      let a = Bitset.of_list 130 la and b = Bitset.of_list 130 lb in
      let result = op a b in
      Bitset.elements result = list_op la lb)

let list_inter a b = List.filter (fun x -> List.mem x b) a
let list_union a b = List.sort_uniq compare (a @ b)
let list_diff a b = List.filter (fun x -> not (List.mem x b)) a

let prop_inter = model_test "inter matches model" Bitset.inter list_inter
let prop_union = model_test "union matches model" Bitset.union list_union
let prop_diff = model_test "diff matches model" Bitset.diff list_diff

let prop_cardinal =
  QCheck.Test.make ~name:"cardinal = |elements|" ~count:500
    (QCheck.make (gen_set 130))
    (fun l ->
      let s = Bitset.of_list 130 l in
      Bitset.cardinal s = List.length l && Bitset.elements s = l)

let prop_inplace_agree =
  QCheck.Test.make ~name:"in-place ops agree with pure ops" ~count:300
    (arbitrary_pair 130) (fun (la, lb) ->
      let a = Bitset.of_list 130 la and b = Bitset.of_list 130 lb in
      let i = Bitset.copy a in
      Bitset.inter_into ~dst:i b;
      let u = Bitset.copy a in
      Bitset.union_into ~dst:u b;
      let d = Bitset.copy a in
      Bitset.diff_into ~dst:d b;
      Bitset.equal i (Bitset.inter a b)
      && Bitset.equal u (Bitset.union a b)
      && Bitset.equal d (Bitset.diff a b))

let prop_nth_total =
  QCheck.Test.make ~name:"nth enumerates elements" ~count:300
    (QCheck.make (gen_set 130))
    (fun l ->
      let s = Bitset.of_list 130 l in
      List.for_all2
        (fun i x -> Bitset.nth s i = Some x)
        (List.init (List.length l) Fun.id)
        l)

let prop_next_set_bit_walk =
  QCheck.Test.make ~name:"next_set_bit walk = elements" ~count:300
    (QCheck.make (gen_set 130))
    (fun l ->
      let s = Bitset.of_list 130 l in
      let rec walk i acc =
        match Bitset.next_set_bit s i with
        | -1 -> List.rev acc
        | j -> walk (j + 1) (j :: acc)
      in
      walk 0 [] = l)

let prop_inter_cardinal =
  QCheck.Test.make ~name:"inter_cardinal = |inter|" ~count:300 (arbitrary_pair 130)
    (fun (la, lb) ->
      let a = Bitset.of_list 130 la and b = Bitset.of_list 130 lb in
      Bitset.inter_cardinal a b = Bitset.cardinal (Bitset.inter a b))

let prop_iter_from_suffix =
  QCheck.Test.make ~name:"iter_from i = elements >= i" ~count:300
    (QCheck.make QCheck.Gen.(pair (gen_set 130) (int_range 0 131)))
    (fun (l, i) ->
      let s = Bitset.of_list 130 l in
      let acc = ref [] in
      Bitset.iter_from (fun x -> acc := x :: !acc) s i;
      List.rev !acc = List.filter (fun x -> x >= i) l)

let () =
  Alcotest.run "bitset"
    [
      ( "unit",
        [
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "add/remove" `Quick test_add_remove;
          Alcotest.test_case "full" `Quick test_full;
          Alcotest.test_case "elements ordered" `Quick test_elements_ordered;
          Alcotest.test_case "nth" `Quick test_nth;
          Alcotest.test_case "universe mismatch" `Quick test_universe_mismatch;
          Alcotest.test_case "next_set_bit" `Quick test_next_set_bit;
          Alcotest.test_case "iter_from" `Quick test_iter_from;
          Alcotest.test_case "inter_cardinal / blit" `Quick test_inter_cardinal_and_blit;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_inter; prop_union; prop_diff; prop_cardinal; prop_inplace_agree;
            prop_nth_total; prop_next_set_bit_walk; prop_inter_cardinal;
            prop_iter_from_suffix;
          ] );
    ]
