(* Differential conformance harness for the parallel search: on seeded
   random problems, work-stealing ECF, static-partition ECF and
   sequential ECF must return identical mapping sets (sorted canonical
   form) and agreeing verdicts, at every tested domain count.  This is
   the executable form of the frame-disjointness argument: subtrees
   under distinct frames partition the permutations tree, so no
   scheduling decision may change the answer — only its order.

   The domain counts exercised are {1, 2, 4} plus the DOMAINS
   environment variable when set (CI runs the suite at DOMAINS=1 and
   DOMAINS=4 on runners with different core counts). *)

module Graph = Netembed_graph.Graph
module Attrs = Netembed_attr.Attrs
module Value = Netembed_attr.Value
module Expr = Netembed_expr.Expr
module Rng = Netembed_rng.Rng
module Parallel = Netembed_parallel.Parallel
open Netembed_core

let delay d = Attrs.of_list [ ("avgDelay", Value.Float d) ]

let band lo hi =
  Attrs.of_list [ ("minDelay", Value.Float lo); ("maxDelay", Value.Float hi) ]

let domains_under_test =
  let base = [ 1; 2; 4 ] in
  match Sys.getenv_opt "DOMAINS" with
  | None -> base
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some d when d >= 1 -> List.sort_uniq compare (d :: base)
      | Some _ | None -> base)

(* Random connected host + random connected query with delay bands.
   Instance shape varies with the seed; roughly a quarter of the
   instances draw near-degenerate bands, so the suite also covers
   agreeing [unsat] verdicts. *)
let instance seed =
  let rng = Rng.make seed in
  let host_n = 8 + Rng.int rng 8 in
  let query_n = 3 + Rng.int rng 3 in
  let tight = Rng.int rng 4 = 0 in
  let host = Graph.create () in
  let hv = Array.init host_n (fun _ -> Graph.add_node host Attrs.empty) in
  for i = 1 to host_n - 1 do
    let j = Rng.int rng i in
    ignore (Graph.add_edge host hv.(j) hv.(i) (delay (Rng.uniform rng ~lo:5.0 ~hi:50.0)))
  done;
  for _ = 1 to host_n * 2 do
    let u = Rng.int rng host_n and v = Rng.int rng host_n in
    if u <> v && not (Graph.mem_edge host hv.(u) hv.(v)) then
      ignore (Graph.add_edge host hv.(u) hv.(v) (delay (Rng.uniform rng ~lo:5.0 ~hi:50.0)))
  done;
  let query = Graph.create () in
  let qv = Array.init query_n (fun _ -> Graph.add_node query Attrs.empty) in
  for i = 1 to query_n - 1 do
    let j = Rng.int rng i in
    let center = Rng.uniform rng ~lo:5.0 ~hi:50.0 in
    let halfwidth = if tight then 0.5 else 10.0 in
    ignore
      (Graph.add_edge query qv.(j) qv.(i) (band (center -. halfwidth) (center +. halfwidth)))
  done;
  Problem.make ~host ~query Expr.avg_delay_within

let canon ms = List.sort_uniq Mapping.compare ms

let equal_sets a b =
  List.length a = List.length b && List.for_all2 Mapping.equal a b

let strategy_name = function
  | Parallel.Static -> "static"
  | Parallel.Work_stealing -> "work-stealing"

let conformance_prop seed =
  let p = instance seed in
  let seq_result =
    Engine.run
      ~options:{ Engine.default_options with Engine.mode = Engine.All }
      Engine.ECF p
  in
  let seq = canon seq_result.Engine.mappings in
  let seq_verdict = Engine.verdict seq_result in
  List.iter
    (fun d ->
      List.iter
        (fun strategy ->
          let st = Parallel.ecf_all_stats ~strategy ~domains:d p in
          let par = canon st.Parallel.mappings in
          let verdict =
            Engine.verdict_of st.Parallel.outcome (List.length st.Parallel.mappings)
          in
          if verdict <> seq_verdict then
            QCheck.Test.fail_reportf
              "seed %d, %s, domains=%d: verdict %s, sequential says %s" seed
              (strategy_name strategy) d verdict seq_verdict;
          if not (equal_sets seq par) then
            QCheck.Test.fail_reportf
              "seed %d, %s, domains=%d: %d mappings, sequential found %d" seed
              (strategy_name strategy) d (List.length par) (List.length seq))
        [ Parallel.Static; Parallel.Work_stealing ])
    domains_under_test;
  true

let conformance_test =
  QCheck.Test.make ~count:50 ~name:"ws = static = sequential (mapping sets + verdicts)"
    (QCheck.make ~print:string_of_int QCheck.Gen.(int_range 1 100_000))
    conformance_prop

(* The same invariant on a handful of pinned shapes that random draws
   can miss: a single-node query (no split possible), a query as large
   as the host (tight permutation), and a disconnected query (the
   second component restarts the neighbour intersection). *)
let pinned_instance = function
  | `Single_node ->
      let host = Netembed_topology.Regular.ring ~edge:(delay 10.0) 5 in
      let query = Graph.create () in
      ignore (Graph.add_node query Attrs.empty);
      Problem.make ~host ~query Expr.avg_delay_within
  | `Full_size ->
      let host = Netembed_topology.Regular.ring ~edge:(delay 10.0) 5 in
      let query = Graph.create () in
      let qv = Array.init 5 (fun _ -> Graph.add_node query Attrs.empty) in
      for i = 0 to 4 do
        ignore (Graph.add_edge query qv.(i) qv.((i + 1) mod 5) (band 5.0 15.0))
      done;
      Problem.make ~host ~query Expr.avg_delay_within
  | `Disconnected ->
      let host = Netembed_topology.Regular.ring ~edge:(delay 10.0) 6 in
      let query = Graph.create () in
      let a = Graph.add_node query Attrs.empty
      and b = Graph.add_node query Attrs.empty
      and c = Graph.add_node query Attrs.empty
      and d = Graph.add_node query Attrs.empty in
      ignore (Graph.add_edge query a b (band 5.0 15.0));
      ignore (Graph.add_edge query c d (band 5.0 15.0));
      Problem.make ~host ~query Expr.avg_delay_within

let test_pinned_shapes () =
  List.iter
    (fun shape ->
      let p = pinned_instance shape in
      let seq = canon (Engine.find_all Engine.ECF p) in
      List.iter
        (fun d ->
          List.iter
            (fun strategy ->
              let st = Parallel.ecf_all_stats ~strategy ~domains:d p in
              Alcotest.(check bool)
                "complete" true
                (st.Parallel.outcome = Engine.Complete);
              Alcotest.(check bool)
                "same set" true
                (equal_sets seq (canon st.Parallel.mappings)))
            [ Parallel.Static; Parallel.Work_stealing ])
        domains_under_test)
    [ `Single_node; `Full_size; `Disconnected ]

(* Deeper split horizons change which frames are expanded vs searched;
   the result set must not notice. *)
let test_split_depth_invariance () =
  let p = instance 4242 in
  let seq = canon (Engine.find_all Engine.ECF p) in
  List.iter
    (fun split_depth ->
      let st =
        Parallel.ecf_all_stats ~strategy:Parallel.Work_stealing ~domains:4
          ~split_depth p
      in
      Alcotest.(check bool)
        (Printf.sprintf "split_depth %d" split_depth)
        true
        (equal_sets seq (canon st.Parallel.mappings)))
    [ 0; 1; 2; 3; 100 ]

(* ------------------------------------------------------------------ *)
(* Evaluator / prefilter differential                                  *)
(* ------------------------------------------------------------------ *)

(* Interp (the seed tree-walking interpreter), Bytecode (the VM) and
   Bytecode+prefilter (Bounds atoms swept over sorted attribute
   columns before any evaluation) must return identical mapping sets
   and verdicts on every instance.  The instances deliberately mix
   numeric bands, string equalities, booleans, disjunctions (which the
   Bounds extraction cannot decide — survivors fall back to the VM)
   and missing attributes, so all three paths through the filter are
   exercised: decide-accept, decide-drop and dirty-fallback. *)

let os_names = [| "linux"; "bsd"; "plan9" |]

let rich_host rng n =
  let host = Graph.create () in
  let hv =
    Array.init n (fun _ ->
        let attrs =
          Attrs.of_list
            ([
               ("cpuMhz", Value.Float (500.0 +. Rng.uniform rng ~lo:0.0 ~hi:2500.0));
               ("up", Value.Bool (Rng.int rng 10 <> 0));
             ]
            @
            (* one host in eight has no osType at all: strict node
               constraints must reject it, accepts-mode edge atoms
               must route it through the dirty fallback *)
            if Rng.int rng 8 = 0 then []
            else [ ("osType", Value.String os_names.(Rng.int rng 3)) ])
        in
        Graph.add_node host attrs)
  in
  for i = 1 to n - 1 do
    let j = Rng.int rng i in
    ignore (Graph.add_edge host hv.(j) hv.(i) (delay (Rng.uniform rng ~lo:5.0 ~hi:50.0)))
  done;
  for _ = 1 to n * 2 do
    let u = Rng.int rng n and v = Rng.int rng n in
    if u <> v && not (Graph.mem_edge host hv.(u) hv.(v)) then
      ignore (Graph.add_edge host hv.(u) hv.(v) (delay (Rng.uniform rng ~lo:5.0 ~hi:50.0)))
  done;
  host

let edge_constraints =
  [|
    (* pure numeric band: fully decided by the prefilter *)
    "rEdge.avgDelay >= vEdge.minDelay && rEdge.avgDelay <= vEdge.maxDelay";
    (* band + string equality on the endpoints *)
    "rEdge.avgDelay <= vEdge.maxDelay && rSource.osType == vSource.osType";
    (* disjunction: extraction is incomplete, everything re-evaluates *)
    "rEdge.avgDelay <= vEdge.maxDelay || rEdge.avgDelay < 8";
    (* boolean atom + band *)
    "rSource.up && rTarget.up && rEdge.avgDelay >= vEdge.minDelay";
    (* arithmetic around the attribute: no atom, generic eval only *)
    "rEdge.avgDelay * 2 <= vEdge.maxDelay + vEdge.maxDelay";
  |]

let node_constraints =
  [|
    None;
    Some "rSource.cpuMhz >= 900";
    Some "rSource.up && rSource.cpuMhz >= vSource.cpuMhz";
    Some "rSource.osType == \"linux\"";
  |]

let rich_instance ~evaluator seed =
  let rng = Rng.make (seed * 7919) in
  let host = rich_host rng (8 + Rng.int rng 8) in
  let query_n = 3 + Rng.int rng 3 in
  let tight = Rng.int rng 4 = 0 in
  let query = Graph.create () in
  let qv =
    Array.init query_n (fun _ ->
        let attrs =
          Attrs.of_list
            ([ ("cpuMhz", Value.Float (600.0 +. Rng.uniform rng ~lo:0.0 ~hi:1000.0)) ]
            @
            if Rng.int rng 2 = 0 then
              [ ("osType", Value.String os_names.(Rng.int rng 3)) ]
            else [])
        in
        Graph.add_node query attrs)
  in
  for i = 1 to query_n - 1 do
    let j = Rng.int rng i in
    let center = Rng.uniform rng ~lo:5.0 ~hi:50.0 in
    let halfwidth = if tight then 0.5 else 10.0 in
    ignore
      (Graph.add_edge query qv.(j) qv.(i) (band (center -. halfwidth) (center +. halfwidth)))
  done;
  let edge_c = Expr.parse_exn edge_constraints.(Rng.int rng (Array.length edge_constraints)) in
  let node_c =
    Option.map Expr.parse_exn
      node_constraints.(Rng.int rng (Array.length node_constraints))
  in
  Problem.make ?node_constraint:node_c ~evaluator ~host ~query edge_c

let evaluator_prop seed =
  let run ~evaluator ~prefilter =
    let p = rich_instance ~evaluator seed in
    let options =
      { Engine.default_options with Engine.mode = Engine.All; prefilter }
    in
    let r = Engine.run ~options Engine.ECF p in
    (canon r.Engine.mappings, Engine.verdict r)
  in
  let oracle, oracle_verdict = run ~evaluator:Problem.Interp ~prefilter:false in
  List.iter
    (fun (name, evaluator, prefilter) ->
      let got, verdict = run ~evaluator ~prefilter in
      if verdict <> oracle_verdict then
        QCheck.Test.fail_reportf "seed %d, %s: verdict %s, interpreter says %s"
          seed name verdict oracle_verdict;
      if not (equal_sets oracle got) then
        QCheck.Test.fail_reportf
          "seed %d, %s: %d mappings, interpreter found %d" seed name
          (List.length got) (List.length oracle))
    [
      ("interp+prefilter", Problem.Interp, true);
      ("bytecode", Problem.Bytecode, false);
      ("bytecode+prefilter", Problem.Bytecode, true);
    ];
  true

let evaluator_conformance_test =
  QCheck.Test.make ~count:60
    ~name:"interp = bytecode = bytecode+prefilter (mapping sets + verdicts)"
    (QCheck.make ~print:string_of_int QCheck.Gen.(int_range 1 100_000))
    evaluator_prop

let () =
  Alcotest.run "conformance"
    [
      ( "differential",
        [
          QCheck_alcotest.to_alcotest conformance_test;
          Alcotest.test_case "pinned shapes" `Quick test_pinned_shapes;
          Alcotest.test_case "split-depth invariance" `Quick test_split_depth_invariance;
        ] );
      ( "evaluator",
        [ QCheck_alcotest.to_alcotest evaluator_conformance_test ] );
    ]
