(* Differential conformance harness for the parallel search: on seeded
   random problems, work-stealing ECF, static-partition ECF and
   sequential ECF must return identical mapping sets (sorted canonical
   form) and agreeing verdicts, at every tested domain count.  This is
   the executable form of the frame-disjointness argument: subtrees
   under distinct frames partition the permutations tree, so no
   scheduling decision may change the answer — only its order.

   The domain counts exercised are {1, 2, 4} plus the DOMAINS
   environment variable when set (CI runs the suite at DOMAINS=1 and
   DOMAINS=4 on runners with different core counts). *)

module Graph = Netembed_graph.Graph
module Attrs = Netembed_attr.Attrs
module Value = Netembed_attr.Value
module Expr = Netembed_expr.Expr
module Rng = Netembed_rng.Rng
module Parallel = Netembed_parallel.Parallel
open Netembed_core

let delay d = Attrs.of_list [ ("avgDelay", Value.Float d) ]

let band lo hi =
  Attrs.of_list [ ("minDelay", Value.Float lo); ("maxDelay", Value.Float hi) ]

let domains_under_test =
  let base = [ 1; 2; 4 ] in
  match Sys.getenv_opt "DOMAINS" with
  | None -> base
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some d when d >= 1 -> List.sort_uniq compare (d :: base)
      | Some _ | None -> base)

(* Random connected host + random connected query with delay bands.
   Instance shape varies with the seed; roughly a quarter of the
   instances draw near-degenerate bands, so the suite also covers
   agreeing [unsat] verdicts. *)
let instance seed =
  let rng = Rng.make seed in
  let host_n = 8 + Rng.int rng 8 in
  let query_n = 3 + Rng.int rng 3 in
  let tight = Rng.int rng 4 = 0 in
  let host = Graph.create () in
  let hv = Array.init host_n (fun _ -> Graph.add_node host Attrs.empty) in
  for i = 1 to host_n - 1 do
    let j = Rng.int rng i in
    ignore (Graph.add_edge host hv.(j) hv.(i) (delay (Rng.uniform rng ~lo:5.0 ~hi:50.0)))
  done;
  for _ = 1 to host_n * 2 do
    let u = Rng.int rng host_n and v = Rng.int rng host_n in
    if u <> v && not (Graph.mem_edge host hv.(u) hv.(v)) then
      ignore (Graph.add_edge host hv.(u) hv.(v) (delay (Rng.uniform rng ~lo:5.0 ~hi:50.0)))
  done;
  let query = Graph.create () in
  let qv = Array.init query_n (fun _ -> Graph.add_node query Attrs.empty) in
  for i = 1 to query_n - 1 do
    let j = Rng.int rng i in
    let center = Rng.uniform rng ~lo:5.0 ~hi:50.0 in
    let halfwidth = if tight then 0.5 else 10.0 in
    ignore
      (Graph.add_edge query qv.(j) qv.(i) (band (center -. halfwidth) (center +. halfwidth)))
  done;
  Problem.make ~host ~query Expr.avg_delay_within

let canon ms = List.sort_uniq Mapping.compare ms

let equal_sets a b =
  List.length a = List.length b && List.for_all2 Mapping.equal a b

let strategy_name = function
  | Parallel.Static -> "static"
  | Parallel.Work_stealing -> "work-stealing"

let conformance_prop seed =
  let p = instance seed in
  let seq_result =
    Engine.run
      ~options:{ Engine.default_options with Engine.mode = Engine.All }
      Engine.ECF p
  in
  let seq = canon seq_result.Engine.mappings in
  let seq_verdict = Engine.verdict seq_result in
  List.iter
    (fun d ->
      List.iter
        (fun strategy ->
          let st = Parallel.ecf_all_stats ~strategy ~domains:d p in
          let par = canon st.Parallel.mappings in
          let verdict =
            Engine.verdict_of st.Parallel.outcome (List.length st.Parallel.mappings)
          in
          if verdict <> seq_verdict then
            QCheck.Test.fail_reportf
              "seed %d, %s, domains=%d: verdict %s, sequential says %s" seed
              (strategy_name strategy) d verdict seq_verdict;
          if not (equal_sets seq par) then
            QCheck.Test.fail_reportf
              "seed %d, %s, domains=%d: %d mappings, sequential found %d" seed
              (strategy_name strategy) d (List.length par) (List.length seq))
        [ Parallel.Static; Parallel.Work_stealing ])
    domains_under_test;
  true

let conformance_test =
  QCheck.Test.make ~count:50 ~name:"ws = static = sequential (mapping sets + verdicts)"
    (QCheck.make ~print:string_of_int QCheck.Gen.(int_range 1 100_000))
    conformance_prop

(* The same invariant on a handful of pinned shapes that random draws
   can miss: a single-node query (no split possible), a query as large
   as the host (tight permutation), and a disconnected query (the
   second component restarts the neighbour intersection). *)
let pinned_instance = function
  | `Single_node ->
      let host = Netembed_topology.Regular.ring ~edge:(delay 10.0) 5 in
      let query = Graph.create () in
      ignore (Graph.add_node query Attrs.empty);
      Problem.make ~host ~query Expr.avg_delay_within
  | `Full_size ->
      let host = Netembed_topology.Regular.ring ~edge:(delay 10.0) 5 in
      let query = Graph.create () in
      let qv = Array.init 5 (fun _ -> Graph.add_node query Attrs.empty) in
      for i = 0 to 4 do
        ignore (Graph.add_edge query qv.(i) qv.((i + 1) mod 5) (band 5.0 15.0))
      done;
      Problem.make ~host ~query Expr.avg_delay_within
  | `Disconnected ->
      let host = Netembed_topology.Regular.ring ~edge:(delay 10.0) 6 in
      let query = Graph.create () in
      let a = Graph.add_node query Attrs.empty
      and b = Graph.add_node query Attrs.empty
      and c = Graph.add_node query Attrs.empty
      and d = Graph.add_node query Attrs.empty in
      ignore (Graph.add_edge query a b (band 5.0 15.0));
      ignore (Graph.add_edge query c d (band 5.0 15.0));
      Problem.make ~host ~query Expr.avg_delay_within

let test_pinned_shapes () =
  List.iter
    (fun shape ->
      let p = pinned_instance shape in
      let seq = canon (Engine.find_all Engine.ECF p) in
      List.iter
        (fun d ->
          List.iter
            (fun strategy ->
              let st = Parallel.ecf_all_stats ~strategy ~domains:d p in
              Alcotest.(check bool)
                "complete" true
                (st.Parallel.outcome = Engine.Complete);
              Alcotest.(check bool)
                "same set" true
                (equal_sets seq (canon st.Parallel.mappings)))
            [ Parallel.Static; Parallel.Work_stealing ])
        domains_under_test)
    [ `Single_node; `Full_size; `Disconnected ]

(* Deeper split horizons change which frames are expanded vs searched;
   the result set must not notice. *)
let test_split_depth_invariance () =
  let p = instance 4242 in
  let seq = canon (Engine.find_all Engine.ECF p) in
  List.iter
    (fun split_depth ->
      let st =
        Parallel.ecf_all_stats ~strategy:Parallel.Work_stealing ~domains:4
          ~split_depth p
      in
      Alcotest.(check bool)
        (Printf.sprintf "split_depth %d" split_depth)
        true
        (equal_sets seq (canon st.Parallel.mappings)))
    [ 0; 1; 2; 3; 100 ]

let () =
  Alcotest.run "conformance"
    [
      ( "differential",
        [
          QCheck_alcotest.to_alcotest conformance_test;
          Alcotest.test_case "pinned shapes" `Quick test_pinned_shapes;
          Alcotest.test_case "split-depth invariance" `Quick test_split_depth_invariance;
        ] );
    ]
