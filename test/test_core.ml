module Graph = Netembed_graph.Graph
module Attrs = Netembed_attr.Attrs
module Value = Netembed_attr.Value
module Expr = Netembed_expr.Expr
module Ast = Netembed_expr.Ast
module Rng = Netembed_rng.Rng
open Netembed_core

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* Fixtures                                                            *)
(* ------------------------------------------------------------------ *)

let delay d = Attrs.of_list [ ("avgDelay", Value.Float d) ]
let band lo hi = Attrs.of_list [ ("minDelay", Value.Float lo); ("maxDelay", Value.Float hi) ]

(* Host: a 4-cycle with increasing delays plus one diagonal. *)
let square_host () =
  let g = Graph.create ~name:"square" () in
  let v = Array.init 4 (fun _ -> Graph.add_node g Attrs.empty) in
  ignore (Graph.add_edge g v.(0) v.(1) (delay 10.0));
  ignore (Graph.add_edge g v.(1) v.(2) (delay 20.0));
  ignore (Graph.add_edge g v.(2) v.(3) (delay 30.0));
  ignore (Graph.add_edge g v.(3) v.(0) (delay 40.0));
  ignore (Graph.add_edge g v.(0) v.(2) (delay 25.0));
  g

(* Query: path q0 - q1 - q2 with delay bands. *)
let path_query () =
  let g = Graph.create ~name:"path" () in
  let q = Array.init 3 (fun _ -> Graph.add_node g Attrs.empty) in
  ignore (Graph.add_edge g q.(0) q.(1) (band 5.0 25.0));
  ignore (Graph.add_edge g q.(1) q.(2) (band 15.0 35.0));
  g

let path_problem () =
  Problem.make ~host:(square_host ()) ~query:(path_query ()) Expr.avg_delay_within

(* Random attributed instance for cross-algorithm comparison. *)
let random_instance seed ~host_n ~query_n =
  let rng = Rng.make seed in
  let host = Graph.create () in
  let hv = Array.init host_n (fun _ -> Graph.add_node host Attrs.empty) in
  for i = 1 to host_n - 1 do
    let j = Rng.int rng i in
    ignore (Graph.add_edge host hv.(j) hv.(i) (delay (Rng.uniform rng ~lo:5.0 ~hi:50.0)))
  done;
  for _ = 1 to host_n * 2 do
    let u = Rng.int rng host_n and v = Rng.int rng host_n in
    if u <> v && not (Graph.mem_edge host hv.(u) hv.(v)) then
      ignore (Graph.add_edge host hv.(u) hv.(v) (delay (Rng.uniform rng ~lo:5.0 ~hi:50.0)))
  done;
  let query = Graph.create () in
  let qv = Array.init query_n (fun _ -> Graph.add_node query Attrs.empty) in
  for i = 1 to query_n - 1 do
    let j = Rng.int rng i in
    let center = Rng.uniform rng ~lo:5.0 ~hi:50.0 in
    ignore (Graph.add_edge query qv.(j) qv.(i) (band (center -. 8.0) (center +. 8.0)))
  done;
  Problem.make ~host ~query Expr.avg_delay_within

let mapping_set mappings = List.sort_uniq Mapping.compare mappings

(* ------------------------------------------------------------------ *)
(* Problem                                                             *)
(* ------------------------------------------------------------------ *)

let test_problem_rejects () =
  let host = square_host () in
  let too_big = Netembed_topology.Regular.clique 5 in
  Alcotest.check_raises "query > host" (Invalid_argument "Problem.make: query larger than host")
    (fun () -> ignore (Problem.make ~host ~query:too_big Expr.always));
  let directed = Graph.create ~kind:Graph.Directed () in
  ignore (Graph.add_node directed Attrs.empty);
  Alcotest.check_raises "kind mismatch"
    (Invalid_argument "Problem.make: host and query must share directedness") (fun () ->
      ignore (Problem.make ~host ~query:directed Expr.always))

let test_edge_pair_ok () =
  let p = path_problem () in
  check Alcotest.bool "in band" true
    (Problem.edge_pair_ok p ~qe:0 ~q_src:0 ~q_dst:1 ~he:0 ~r_src:0 ~r_dst:1);
  check Alcotest.bool "out of band" false
    (Problem.edge_pair_ok p ~qe:0 ~q_src:0 ~q_dst:1 ~he:3 ~r_src:3 ~r_dst:0)

let test_node_ok_degree () =
  let host = Netembed_topology.Regular.star 5 in
  let query = Netembed_topology.Regular.star 4 in
  let p = Problem.make ~host ~query Expr.always in
  check Alcotest.bool "hub onto hub" true (Problem.node_ok p ~q:0 ~r:0);
  check Alcotest.bool "hub onto leaf" false (Problem.node_ok p ~q:0 ~r:1);
  let p' = Problem.make ~degree_filter:false ~host ~query Expr.always in
  check Alcotest.bool "filter off" true (Problem.node_ok p' ~q:0 ~r:1)

let test_node_constraint () =
  let host = square_host () in
  Graph.set_node_attrs host 2 (Attrs.of_list [ ("osType", Value.String "linux") ]);
  let query = path_query () in
  let node_constraint = Expr.parse_exn "rSource.osType == 'linux'" in
  let p = Problem.make ~node_constraint ~host ~query Expr.always in
  check Alcotest.bool "node 2 passes" true (Problem.node_ok p ~q:0 ~r:2);
  check Alcotest.bool "node 0 lacks attr" false (Problem.node_ok p ~q:0 ~r:0)

(* ------------------------------------------------------------------ *)
(* Filter                                                              *)
(* ------------------------------------------------------------------ *)

let test_filter_cells () =
  let p = path_problem () in
  let f = Filter.build ~prefilter:false p in
  check Alcotest.(list int) "cell (q0,0,q1)" [ 1; 2 ]
    (Array.to_list (Filter.candidates_from f ~q_assigned:0 ~r_assigned:0 ~q_next:1));
  check Alcotest.(list int) "cell (q1,3,q2)" [ 2 ]
    (Array.to_list (Filter.candidates_from f ~q_assigned:1 ~r_assigned:3 ~q_next:2));
  check Alcotest.bool "constraint evals counted" true (Problem.constraint_evals p > 0);
  check Alcotest.bool "cells counted" true (Filter.cell_count f > 0);
  (* The bounds pre-filter must produce the identical matrix while
     skipping evaluations entirely on this fully-extractable
     constraint. *)
  let p2 = path_problem () in
  let f2 = Filter.build ~prefilter:true p2 in
  check Alcotest.(list int) "prefilter: cell (q0,0,q1)" [ 1; 2 ]
    (Array.to_list (Filter.candidates_from f2 ~q_assigned:0 ~r_assigned:0 ~q_next:1));
  check Alcotest.(list int) "prefilter: cell (q1,3,q2)" [ 2 ]
    (Array.to_list (Filter.candidates_from f2 ~q_assigned:1 ~r_assigned:3 ~q_next:2));
  check Alcotest.int "prefilter: same cell count" (Filter.cell_count f)
    (Filter.cell_count f2);
  check Alcotest.bool "prefilter skips evaluations" true
    (Problem.constraint_evals p2 < Problem.constraint_evals p)

let test_filter_order_covers () =
  let p = random_instance 5 ~host_n:20 ~query_n:8 in
  let f = Filter.build p in
  let order = Array.copy (Filter.order f) in
  Array.sort compare order;
  check Alcotest.(array int) "order is a permutation" (Array.init 8 Fun.id) order

let test_filter_node_candidates_sound () =
  let p = random_instance 11 ~host_n:12 ~query_n:5 in
  let f = Filter.build p in
  let all = Netembed_baselines.Bruteforce.find_all p in
  List.iter
    (fun m ->
      List.iter
        (fun (q, r) ->
          if not (Array.mem r (Filter.node_candidates f q)) then
            Alcotest.failf "host %d missing from node candidates of q%d" r q)
        (Mapping.to_list m))
    all

(* ------------------------------------------------------------------ *)
(* Algorithms: agreement & correctness                                 *)
(* ------------------------------------------------------------------ *)

let find_all_via alg p =
  (Engine.run ~options:{ Engine.default_options with Engine.mode = Engine.All } alg p)
    .Engine.mappings

let test_three_algorithms_agree_small () =
  let p = path_problem () in
  let ecf = mapping_set (find_all_via Engine.ECF p) in
  let rwb = mapping_set (find_all_via Engine.RWB p) in
  let lns = mapping_set (find_all_via Engine.LNS p) in
  let brute = mapping_set (Netembed_baselines.Bruteforce.find_all p) in
  check Alcotest.int "ECF = brute" (List.length brute) (List.length ecf);
  check Alcotest.bool "ECF set" true (List.for_all2 Mapping.equal brute ecf);
  check Alcotest.bool "RWB set" true (List.for_all2 Mapping.equal brute rwb);
  check Alcotest.bool "LNS set" true (List.for_all2 Mapping.equal brute lns)

let test_agreement_random_instances () =
  (* The central soundness test: on a spread of random instances, all
     three algorithms enumerate exactly the brute-force solution set,
     and every reported mapping passes the independent verifier. *)
  for seed = 1 to 25 do
    let p = random_instance seed ~host_n:10 ~query_n:4 in
    let brute = mapping_set (Netembed_baselines.Bruteforce.find_all p) in
    List.iter
      (fun alg ->
        let got = mapping_set (find_all_via alg p) in
        if List.length got <> List.length brute then
          Alcotest.failf "seed %d: %s found %d, brute force %d" seed
            (Engine.algorithm_name alg) (List.length got) (List.length brute);
        List.iter
          (fun m ->
            match Verify.check p m with
            | Ok () -> ()
            | Error v ->
                Alcotest.failf "seed %d: %s returned invalid mapping (%s)" seed
                  (Engine.algorithm_name alg)
                  (Format.asprintf "%a" Verify.pp_violation v))
          got;
        if not (List.for_all2 Mapping.equal brute got) then
          Alcotest.failf "seed %d: %s mapping set differs" seed
            (Engine.algorithm_name alg))
      Engine.all_algorithms
  done

let test_feasible_by_construction () =
  let rng = Rng.make 31 in
  let host =
    Netembed_topology.Brite.generate (Rng.make 32)
      (Netembed_topology.Brite.default_barabasi ~n:60)
  in
  for _ = 1 to 5 do
    let case = Netembed_workload.Query_gen.subgraph rng ~host ~n:10 () in
    let p =
      Problem.make ~host ~query:case.Netembed_workload.Query_gen.query
        case.Netembed_workload.Query_gen.edge_constraint
    in
    List.iter
      (fun alg ->
        match Engine.find_first alg p with
        | Some m -> check Alcotest.bool "valid" true (Verify.is_valid p m)
        | None ->
            Alcotest.failf "%s missed a guaranteed embedding" (Engine.algorithm_name alg))
      Engine.all_algorithms
  done

let test_infeasible_complete_empty () =
  let rng = Rng.make 41 in
  let host =
    Netembed_topology.Brite.generate (Rng.make 42)
      (Netembed_topology.Brite.default_barabasi ~n:40)
  in
  let case = Netembed_workload.Query_gen.subgraph rng ~host ~n:8 () in
  let infeasible = Netembed_workload.Query_gen.make_infeasible rng case in
  let p =
    Problem.make ~host ~query:infeasible.Netembed_workload.Query_gen.query
      infeasible.Netembed_workload.Query_gen.edge_constraint
  in
  List.iter
    (fun alg ->
      let r = Engine.run ~options:{ Engine.default_options with Engine.mode = Engine.All } alg p in
      check Alcotest.bool "complete" true (r.Engine.outcome = Engine.Complete);
      check Alcotest.int "no mappings" 0 (List.length r.Engine.mappings))
    Engine.all_algorithms

let test_directed_embedding () =
  let host = Graph.create ~kind:Graph.Directed () in
  let a = Graph.add_node host Attrs.empty and b = Graph.add_node host Attrs.empty in
  let c = Graph.add_node host Attrs.empty in
  ignore (Graph.add_edge host a b (delay 10.0));
  ignore (Graph.add_edge host c b (delay 10.0));
  let query = Graph.create ~kind:Graph.Directed () in
  let q0 = Graph.add_node query Attrs.empty and q1 = Graph.add_node query Attrs.empty in
  ignore (Graph.add_edge query q0 q1 (band 5.0 15.0));
  let p = Problem.make ~host ~query Expr.avg_delay_within in
  let all = mapping_set (find_all_via Engine.ECF p) in
  check Alcotest.int "two directed embeddings" 2 (List.length all);
  List.iter
    (fun m ->
      check Alcotest.int "target is b" b (Mapping.apply m q1);
      check Alcotest.bool "valid" true (Verify.is_valid p m))
    all;
  check Alcotest.int "LNS directed" 2 (List.length (mapping_set (find_all_via Engine.LNS p)))

let test_asymmetric_constraint () =
  let host = Graph.create () in
  let v = Array.init 3 (fun i ->
      Graph.add_node host (Attrs.of_list [ ("rank", Value.Int i) ])) in
  ignore (Graph.add_edge host v.(0) v.(1) (delay 10.0));
  ignore (Graph.add_edge host v.(1) v.(2) (delay 10.0));
  let query = Graph.create () in
  let q0 = Graph.add_node query Attrs.empty and q1 = Graph.add_node query Attrs.empty in
  ignore (Graph.add_edge query q0 q1 Attrs.empty);
  let p = Problem.make ~host ~query (Expr.parse_exn "rSource.rank < rTarget.rank") in
  let all = mapping_set (find_all_via Engine.ECF p) in
  check Alcotest.int "two oriented mappings" 2 (List.length all);
  List.iter
    (fun m ->
      check Alcotest.bool "orientation respected" true
        (Mapping.apply m q0 < Mapping.apply m q1))
    all;
  let lns = mapping_set (find_all_via Engine.LNS p) in
  check Alcotest.int "LNS agrees" 2 (List.length lns)

(* ------------------------------------------------------------------ *)
(* Engine modes, budget, outcomes                                      *)
(* ------------------------------------------------------------------ *)

let test_ordering_ablation_agreement () =
  (* The search order affects speed, never the answer set. *)
  for seed = 1 to 8 do
    let p = random_instance (100 + seed) ~host_n:10 ~query_n:4 in
    let sets =
      List.map
        (fun ordering ->
          let filter = Filter.build ~ordering p in
          let budget = Budget.unlimited () in
          let acc = ref [] in
          Dfs.search p filter ~candidate_order:Dfs.Ascending ~budget
            ~on_solution:(fun m ->
              acc := m :: !acc;
              `Continue);
          mapping_set !acc)
        [ Filter.Connected_lemma1; Filter.Lemma1; Filter.Input_order ]
    in
    match sets with
    | [ a; b; c ] ->
        if
          List.length a <> List.length b
          || List.length b <> List.length c
          || (not (List.for_all2 Mapping.equal a b))
          || not (List.for_all2 Mapping.equal b c)
        then Alcotest.failf "seed %d: ordering changed the answer set" seed
    | _ -> assert false
  done

let test_first_mode () =
  let p = path_problem () in
  List.iter
    (fun alg ->
      let r = Engine.run ~options:{ Engine.default_options with Engine.mode = Engine.First } alg p in
      check Alcotest.int "one mapping" 1 (List.length r.Engine.mappings);
      check Alcotest.bool "has first time" true (r.Engine.time_to_first <> None))
    Engine.all_algorithms

let test_at_most_mode () =
  let p = random_instance 3 ~host_n:14 ~query_n:4 in
  let total = List.length (find_all_via Engine.ECF p) in
  if total < 3 then Alcotest.fail "fixture too constrained for At_most test";
  let r =
    Engine.run ~options:{ Engine.default_options with Engine.mode = Engine.At_most 2 }
      Engine.ECF p
  in
  check Alcotest.int "stopped at 2" 2 (List.length r.Engine.mappings)

let test_budget_visited_cap () =
  let p = random_instance 8 ~host_n:20 ~query_n:6 in
  let r =
    Engine.run
      ~options:{ Engine.default_options with Engine.mode = Engine.All; max_visited = Some 5 }
      Engine.ECF p
  in
  check Alcotest.bool "classified as budget-bound" true
    (r.Engine.outcome = Engine.Partial || r.Engine.outcome = Engine.Inconclusive);
  check Alcotest.bool "visited near cap" true (r.Engine.visited <= 6)

let test_budget_standalone () =
  let b = Budget.make ~max_visited:10 () in
  (try
     for _ = 1 to 100 do
       Budget.tick b
     done;
     Alcotest.fail "expected Exhausted"
   with Budget.Exhausted -> ());
  check Alcotest.bool "marked exhausted" true (Budget.exhausted b);
  check Alcotest.int "visited counted" 11 (Budget.visited b);
  let c = Budget.make ~cancelled:(fun () -> true) () in
  (try
     for _ = 1 to 3000 do
       Budget.tick c
     done;
     Alcotest.fail "expected cancellation"
   with Budget.Exhausted -> ());
  check Alcotest.bool "cancelled" true (Budget.exhausted c)

let test_empty_query () =
  let host = square_host () in
  let query = Graph.create () in
  let p = Problem.make ~host ~query Expr.always in
  List.iter
    (fun alg ->
      let r = Engine.run ~options:{ Engine.default_options with Engine.mode = Engine.All } alg p in
      check Alcotest.int "one empty mapping" 1 (List.length r.Engine.mappings);
      check Alcotest.int "of size zero" 0 (Mapping.size (List.hd r.Engine.mappings)))
    Engine.all_algorithms

let test_disconnected_query () =
  let host = square_host () in
  let query = Graph.create () in
  let q = Array.init 4 (fun _ -> Graph.add_node query Attrs.empty) in
  ignore (Graph.add_edge query q.(0) q.(1) (band 5.0 15.0));
  ignore (Graph.add_edge query q.(2) q.(3) (band 25.0 35.0));
  let p = Problem.make ~host ~query Expr.avg_delay_within in
  let brute = mapping_set (Netembed_baselines.Bruteforce.find_all p) in
  check Alcotest.bool "instance has solutions" true (brute <> []);
  List.iter
    (fun alg ->
      let got = mapping_set (find_all_via alg p) in
      check Alcotest.int
        (Engine.algorithm_name alg ^ " matches brute force")
        (List.length brute) (List.length got))
    Engine.all_algorithms

let test_rwb_seed_variation () =
  let p = random_instance 9 ~host_n:16 ~query_n:5 in
  let first seed =
    (Engine.run ~options:{ Engine.default_options with Engine.seed } Engine.RWB p)
      .Engine.mappings
  in
  let a1 = first 1 and a1' = first 1 and a2 = first 2 in
  check Alcotest.bool "deterministic per seed" true
    (match (a1, a1') with
    | [ m1 ], [ m2 ] -> Mapping.equal m1 m2
    | [], [] -> true
    | _ -> false);
  List.iter
    (fun ms -> List.iter (fun m -> assert (Verify.is_valid p m)) ms)
    [ a1; a2 ]

let test_residual_for_edge () =
  let p = path_problem () in
  (* The residual for query edge (0,1) folds the band into literals. *)
  let residual = Problem.residual_for_edge p ~q_src:0 ~q_dst:1 in
  check Alcotest.bool "no v-side references left" true
    (Ast.fold_attrs
       (fun obj _ acc ->
         acc
         && match obj with Ast.V_edge | Ast.V_source | Ast.V_target -> false | _ -> true)
       residual true);
  match Problem.residual_for_edge p ~q_src:0 ~q_dst:2 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "no such query edge"

let test_problem_prepare () =
  let p = path_problem () in
  Problem.prepare p;
  (* Residual cache fully populated (2 per edge). *)
  check Alcotest.bool "residuals cached" true
    (Array.for_all Option.is_some p.Problem.residuals);
  (* Idempotent. *)
  Problem.prepare p

let test_engine_wrappers () =
  let p = path_problem () in
  (match Engine.find_first Engine.ECF p with
  | Some m -> check Alcotest.bool "valid" true (Verify.is_valid p m)
  | None -> Alcotest.fail "expected a mapping");
  check Alcotest.int "find_all" 6 (List.length (Engine.find_all Engine.ECF p));
  (* At_most 0 returns nothing but completes. *)
  let r =
    Engine.run ~options:{ Engine.default_options with Engine.mode = Engine.At_most 0 }
      Engine.ECF p
  in
  check Alcotest.int "at most zero" 0 (List.length r.Engine.mappings)

let test_collect_false () =
  let p = path_problem () in
  let r =
    Engine.run
      ~options:{ Engine.default_options with Engine.mode = Engine.All; collect = false }
      Engine.ECF p
  in
  check Alcotest.int "nothing retained" 0 (List.length r.Engine.mappings);
  check Alcotest.int "count kept" 6 r.Engine.found;
  check Alcotest.bool "complete" true (r.Engine.outcome = Engine.Complete);
  (* found mirrors |mappings| when collecting. *)
  let r' =
    Engine.run ~options:{ Engine.default_options with Engine.mode = Engine.All }
      Engine.ECF p
  in
  check Alcotest.int "found = |mappings|" (List.length r'.Engine.mappings) r'.Engine.found

let test_algorithm_names () =
  check Alcotest.(list string) "names" [ "ECF"; "RWB"; "LNS" ]
    (List.map Engine.algorithm_name Engine.all_algorithms);
  check Alcotest.string "outcomes" "complete,partial,inconclusive"
    (String.concat ","
       (List.map Engine.outcome_name [ Engine.Complete; Engine.Partial; Engine.Inconclusive ]))

(* ------------------------------------------------------------------ *)
(* Mapping / Verify                                                    *)
(* ------------------------------------------------------------------ *)

let test_mapping_basics () =
  let m = Mapping.of_array [| 3; 1; 4 |] in
  check Alcotest.int "size" 3 (Mapping.size m);
  check Alcotest.int "apply" 4 (Mapping.apply m 2);
  check Alcotest.bool "injective" true (Mapping.is_injective m);
  check Alcotest.bool "not injective" false (Mapping.is_injective (Mapping.of_array [| 1; 1 |]));
  Alcotest.check_raises "out of range" (Invalid_argument "Mapping.apply: out of range")
    (fun () -> ignore (Mapping.apply m 5));
  check Alcotest.(list (pair int int)) "to_list" [ (0, 3); (1, 1); (2, 4) ] (Mapping.to_list m)

let test_verify_violations () =
  let p = path_problem () in
  let violation m =
    match Verify.check p (Mapping.of_array m) with
    | Error v -> Format.asprintf "%a" Verify.pp_violation v
    | Ok () -> "ok"
  in
  check Alcotest.string "valid" "ok" (violation [| 0; 1; 2 |]);
  check Alcotest.bool "wrong size" true (violation [| 0; 1 |] <> "ok");
  check Alcotest.bool "not injective" true (violation [| 0; 0; 2 |] <> "ok");
  check Alcotest.bool "out of range" true (violation [| 0; 1; 9 |] <> "ok");
  check Alcotest.bool "edge unsatisfied" true (violation [| 0; 3; 2 |] <> "ok")

let () =
  Alcotest.run "core"
    [
      ( "problem",
        [
          Alcotest.test_case "rejections" `Quick test_problem_rejects;
          Alcotest.test_case "edge_pair_ok" `Quick test_edge_pair_ok;
          Alcotest.test_case "degree filter" `Quick test_node_ok_degree;
          Alcotest.test_case "node constraint" `Quick test_node_constraint;
        ] );
      ( "filter",
        [
          Alcotest.test_case "cells" `Quick test_filter_cells;
          Alcotest.test_case "order covers query" `Quick test_filter_order_covers;
          Alcotest.test_case "node candidates sound" `Quick test_filter_node_candidates_sound;
        ] );
      ( "algorithms",
        [
          Alcotest.test_case "agree on fixture" `Quick test_three_algorithms_agree_small;
          Alcotest.test_case "agree on 25 random instances" `Quick test_agreement_random_instances;
          Alcotest.test_case "feasible by construction" `Quick test_feasible_by_construction;
          Alcotest.test_case "infeasible proved" `Quick test_infeasible_complete_empty;
          Alcotest.test_case "directed" `Quick test_directed_embedding;
          Alcotest.test_case "asymmetric constraint" `Quick test_asymmetric_constraint;
          Alcotest.test_case "disconnected query" `Quick test_disconnected_query;
          Alcotest.test_case "ordering ablation agreement" `Quick
            test_ordering_ablation_agreement;
        ] );
      ( "engine",
        [
          Alcotest.test_case "first mode" `Quick test_first_mode;
          Alcotest.test_case "at-most mode" `Quick test_at_most_mode;
          Alcotest.test_case "visited cap" `Quick test_budget_visited_cap;
          Alcotest.test_case "budget" `Quick test_budget_standalone;
          Alcotest.test_case "empty query" `Quick test_empty_query;
          Alcotest.test_case "rwb seeds" `Quick test_rwb_seed_variation;
        ] );
      ( "mapping",
        [
          Alcotest.test_case "basics" `Quick test_mapping_basics;
          Alcotest.test_case "verify violations" `Quick test_verify_violations;
        ] );
      ( "api",
        [
          Alcotest.test_case "residual_for_edge" `Quick test_residual_for_edge;
          Alcotest.test_case "prepare" `Quick test_problem_prepare;
          Alcotest.test_case "engine wrappers" `Quick test_engine_wrappers;
          Alcotest.test_case "collect=false" `Quick test_collect_false;
          Alcotest.test_case "names" `Quick test_algorithm_names;
        ] );
    ]
