(* Unit tests for the Domain_store scratch pool, plus the differential
   test of the representation refactor: the bitset-backed search core
   must return exactly the answer of the seed sorted-array
   implementation (kept as Dfs.search_arrays) on a spread of seeded
   random problems — mixed directed/undirected, with and without
   node-level filters. *)

module Graph = Netembed_graph.Graph
module Attrs = Netembed_attr.Attrs
module Value = Netembed_attr.Value
module Expr = Netembed_expr.Expr
module Rng = Netembed_rng.Rng
module Bitset = Netembed_bitset.Bitset
open Netembed_core

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* Domain_store unit tests                                             *)
(* ------------------------------------------------------------------ *)

let test_store_basics () =
  let s = Domain_store.create ~universe:100 ~depths:4 in
  check Alcotest.int "universe" 100 (Domain_store.universe s);
  check Alcotest.int "depths" 4 (Domain_store.depths s);
  let cell = Bitset.of_list 100 [ 1; 5; 40; 99 ] in
  let dom = Domain_store.load s ~depth:0 cell in
  check Alcotest.(list int) "load copies" [ 1; 5; 40; 99 ] (Bitset.elements dom);
  Bitset.remove dom 5;
  check Alcotest.bool "source untouched by scratch mutation" true (Bitset.mem cell 5);
  Domain_store.restrict s ~depth:0 (Bitset.of_list 100 [ 1; 40; 77 ]);
  check Alcotest.(list int) "restrict intersects" [ 1; 40 ]
    (Bitset.elements (Domain_store.domain s ~depth:0));
  Domain_store.mark_used s 40;
  Domain_store.exclude_used s ~depth:0;
  check Alcotest.(list int) "exclude_used subtracts" [ 1 ]
    (Bitset.elements (Domain_store.domain s ~depth:0));
  Domain_store.release_used s 40;
  check Alcotest.bool "release clears used" true (Bitset.is_empty (Domain_store.used s));
  (* Depths are independent scratch. *)
  ignore (Domain_store.load_array s ~depth:1 [| 7; 8 |]);
  check Alcotest.(list int) "depth 0 unaffected" [ 1 ]
    (Bitset.elements (Domain_store.domain s ~depth:0));
  let stats = Domain_store.stats s in
  check Alcotest.int "domains counted" 2 stats.Domain_store.domains_built;
  check Alcotest.int "intersections counted" 1 stats.Domain_store.intersections;
  check Alcotest.bool "scratch footprint reported" true (stats.Domain_store.scratch_words > 0)

let test_store_order_buffer () =
  let s = Domain_store.create ~universe:70 ~depths:2 in
  ignore (Domain_store.load_array s ~depth:1 [| 0; 13; 61; 62; 69 |]);
  let count = Domain_store.fill_order_buffer s ~depth:1 in
  check Alcotest.int "count" 5 count;
  let buf = Domain_store.order_buffer s ~depth:1 in
  check Alcotest.(list int) "ascending prefix" [ 0; 13; 61; 62; 69 ]
    (Array.to_list (Array.sub buf 0 count))

let test_store_reset_and_errors () =
  let s = Domain_store.create ~universe:10 ~depths:1 in
  Domain_store.mark_used s 3;
  Domain_store.reset s;
  check Alcotest.bool "reset clears used" true (Bitset.is_empty (Domain_store.used s));
  Alcotest.check_raises "negative universe" (Invalid_argument "Domain_store.create")
    (fun () -> ignore (Domain_store.create ~universe:(-1) ~depths:0));
  (* Dfs rejects stores of the wrong shape. *)
  let host = Netembed_topology.Regular.clique 5 in
  let query = Netembed_topology.Regular.ring 3 in
  let p = Problem.make ~host ~query Expr.always in
  let f = Filter.build p in
  let run store =
    Dfs.search ~store p f ~candidate_order:Dfs.Ascending ~budget:(Budget.unlimited ())
      ~on_solution:(fun _ -> `Continue)
  in
  Alcotest.check_raises "universe mismatch"
    (Invalid_argument "Dfs.search: store universe mismatch") (fun () ->
      run (Domain_store.create ~universe:4 ~depths:3));
  Alcotest.check_raises "too shallow" (Invalid_argument "Dfs.search: store too shallow")
    (fun () -> run (Domain_store.create ~universe:5 ~depths:2))

let test_store_reuse_across_searches () =
  (* A store passed explicitly is reset between searches and yields the
     same answers as private stores. *)
  let host = Netembed_topology.Regular.clique 6 in
  let query = Netembed_topology.Regular.ring 4 in
  let p = Problem.make ~host ~query Expr.always in
  let f = Filter.build p in
  let store = Domain_store.create ~universe:6 ~depths:4 in
  let run () =
    let acc = ref 0 in
    Dfs.search ~store p f ~candidate_order:Dfs.Ascending ~budget:(Budget.unlimited ())
      ~on_solution:(fun _ ->
        incr acc;
        `Continue);
    !acc
  in
  let a = run () in
  let b = run () in
  check Alcotest.int "same count on reuse" a b;
  check Alcotest.bool "found embeddings" true (a > 0)

(* ------------------------------------------------------------------ *)
(* Differential: bitset engine vs seed sorted-array implementation     *)
(* ------------------------------------------------------------------ *)

let delay d = Attrs.of_list [ ("avgDelay", Value.Float d) ]

let band lo hi =
  Attrs.of_list [ ("minDelay", Value.Float lo); ("maxDelay", Value.Float hi) ]

let cap c = Attrs.of_list [ ("cap", Value.Int c) ]

(* Random problem: connected-ish host with random extra edges, random
   spanning-tree query with delay bands; optionally directed, optionally
   carrying a node-capacity filter. *)
let random_problem seed ~directed ~node_filtered =
  let rng = Rng.make seed in
  let host_n = 8 + Rng.int rng 6 in
  let query_n = 3 + Rng.int rng 3 in
  let kind = if directed then Graph.Directed else Graph.Undirected in
  let node_attrs () = if node_filtered then cap (Rng.int rng 4) else Attrs.empty in
  let host = Graph.create ~kind () in
  let hv = Array.init host_n (fun _ -> Graph.add_node host (node_attrs ())) in
  for i = 1 to host_n - 1 do
    let j = Rng.int rng i in
    let u, v = if directed && Rng.bool rng then (i, j) else (j, i) in
    ignore (Graph.add_edge host hv.(u) hv.(v) (delay (Rng.uniform rng ~lo:5.0 ~hi:50.0)))
  done;
  for _ = 1 to host_n * 2 do
    let u = Rng.int rng host_n and v = Rng.int rng host_n in
    if u <> v && not (Graph.mem_edge host hv.(u) hv.(v)) then
      ignore (Graph.add_edge host hv.(u) hv.(v) (delay (Rng.uniform rng ~lo:5.0 ~hi:50.0)))
  done;
  let query = Graph.create ~kind () in
  let qv =
    Array.init query_n (fun _ ->
        Graph.add_node query (if node_filtered then cap (Rng.int rng 3) else Attrs.empty))
  in
  for i = 1 to query_n - 1 do
    let j = Rng.int rng i in
    let u, v = if directed && Rng.bool rng then (i, j) else (j, i) in
    let center = Rng.uniform rng ~lo:5.0 ~hi:50.0 in
    ignore (Graph.add_edge query qv.(u) qv.(v) (band (center -. 10.0) (center +. 10.0)))
  done;
  let node_constraint =
    if node_filtered then Some (Expr.parse_exn "rSource.cap >= vSource.cap") else None
  in
  Problem.make ?node_constraint ~host ~query Expr.avg_delay_within

let mapping_set ms = List.sort_uniq Mapping.compare ms

(* The seed implementation, run to exhaustion. *)
let legacy_all p =
  let f = Filter.build p in
  let acc = ref [] in
  Dfs.search_arrays p f ~candidate_order:Dfs.Ascending ~budget:(Budget.unlimited ())
    ~on_solution:(fun m ->
      acc := m :: !acc;
      `Continue);
  (mapping_set !acc, List.length !acc)

let legacy_first p =
  let f = Filter.build p in
  let acc = ref None in
  Dfs.search_arrays p f ~candidate_order:Dfs.Ascending ~budget:(Budget.unlimited ())
    ~on_solution:(fun m ->
      acc := Some m;
      `Stop);
  !acc

let variants =
  [
    (false, false, "undirected");
    (false, true, "undirected+node-filter");
    (true, false, "directed");
    (true, true, "directed+node-filter");
  ]

let test_differential_all () =
  (* ~50 seeded problems across the four variants: identical mapping
     sets, counts and outcome for ECF in All mode. *)
  let nonempty = ref 0 in
  List.iter
    (fun (directed, node_filtered, label) ->
      for seed = 1 to 13 do
        let p = random_problem seed ~directed ~node_filtered in
        let legacy_set, legacy_found = legacy_all p in
        let r =
          Engine.run
            ~options:{ Engine.default_options with Engine.mode = Engine.All }
            Engine.ECF p
        in
        let bitset_set = mapping_set r.Engine.mappings in
        if r.Engine.outcome <> Engine.Complete then
          Alcotest.failf "%s seed %d: bitset run not complete" label seed;
        if r.Engine.found <> legacy_found then
          Alcotest.failf "%s seed %d: found %d vs legacy %d" label seed r.Engine.found
            legacy_found;
        if List.length bitset_set <> List.length legacy_set then
          Alcotest.failf "%s seed %d: set size differs" label seed;
        if not (List.for_all2 Mapping.equal legacy_set bitset_set) then
          Alcotest.failf "%s seed %d: mapping sets differ" label seed;
        if legacy_found > 0 then incr nonempty;
        (* Every reported mapping passes the independent verifier. *)
        List.iter
          (fun m ->
            if not (Verify.is_valid p m) then
              Alcotest.failf "%s seed %d: invalid mapping" label seed)
          r.Engine.mappings
      done)
    variants;
  (* The spread must actually exercise the search, not just prove
     infeasibility everywhere. *)
  check Alcotest.bool "enough feasible instances" true (!nonempty >= 10)

let test_differential_first () =
  (* Deterministic ECF First: both representations must report the very
     same first solution (ascending enumeration visits the identical
     tree). *)
  List.iter
    (fun (directed, node_filtered, label) ->
      for seed = 1 to 13 do
        let p = random_problem seed ~directed ~node_filtered in
        let legacy = legacy_first p in
        let bitset =
          (Engine.run
             ~options:{ Engine.default_options with Engine.mode = Engine.First }
             Engine.ECF p)
            .Engine.mappings
        in
        match (legacy, bitset) with
        | None, [] -> ()
        | Some m, [ m' ] ->
            if not (Mapping.equal m m') then
              Alcotest.failf "%s seed %d: first solutions differ" label seed
        | Some _, [] -> Alcotest.failf "%s seed %d: bitset path missed the solution" label seed
        | None, _ :: _ -> Alcotest.failf "%s seed %d: bitset path invented a solution" label seed
        | _, _ :: _ :: _ -> Alcotest.failf "%s seed %d: First returned several" label seed
      done)
    variants

let test_differential_visited_prefix () =
  (* Under a visited-node budget both paths truncate at the same point:
     the budget-limited prefixes coincide, mapping for mapping. *)
  for seed = 1 to 8 do
    let p = random_problem (100 + seed) ~directed:false ~node_filtered:false in
    let cap = 40 in
    let run search =
      let f = Filter.build p in
      let acc = ref [] in
      (try
         search p f ~candidate_order:Dfs.Ascending
           ~budget:(Budget.make ~max_visited:cap ())
           ~on_solution:(fun m ->
             acc := m :: !acc;
             `Continue)
       with Budget.Exhausted -> ());
      List.rev !acc
    in
    let legacy = run (Dfs.search_arrays ?root_candidates:None) in
    let bitset = run (fun p f -> Dfs.search p f) in
    if List.length legacy <> List.length bitset then
      Alcotest.failf "seed %d: prefix lengths differ" seed;
    if not (List.for_all2 Mapping.equal legacy bitset) then
      Alcotest.failf "seed %d: budget-limited prefixes differ" seed
  done

let test_engine_reports_domain_stats () =
  let p = random_problem 7 ~directed:false ~node_filtered:false in
  List.iter
    (fun alg ->
      let r =
        Engine.run ~options:{ Engine.default_options with Engine.mode = Engine.All } alg p
      in
      match r.Engine.domain_stats with
      | None -> Alcotest.failf "%s: no domain stats" (Engine.algorithm_name alg)
      | Some s ->
          check Alcotest.bool
            (Engine.algorithm_name alg ^ " universe")
            true
            (s.Domain_store.universe = Graph.node_count p.Problem.host);
          if r.Engine.visited > 1 && alg <> Engine.RWB then
            check Alcotest.bool
              (Engine.algorithm_name alg ^ " built domains")
              true (s.Domain_store.domains_built > 0))
    Engine.all_algorithms

let () =
  Alcotest.run "domain_store"
    [
      ( "store",
        [
          Alcotest.test_case "basics" `Quick test_store_basics;
          Alcotest.test_case "order buffer" `Quick test_store_order_buffer;
          Alcotest.test_case "reset and errors" `Quick test_store_reset_and_errors;
          Alcotest.test_case "reuse across searches" `Quick test_store_reuse_across_searches;
        ] );
      ( "differential",
        [
          Alcotest.test_case "ECF All set equality (52 problems)" `Quick
            test_differential_all;
          Alcotest.test_case "ECF First identical (52 problems)" `Quick
            test_differential_first;
          Alcotest.test_case "budget-limited prefix equality" `Quick
            test_differential_visited_prefix;
          Alcotest.test_case "engine reports domain stats" `Quick
            test_engine_reports_domain_stats;
        ] );
    ]
