(* Explainability: constraint blame, failure certificates and the
   flight recorder — unit tests for the kernel plus end-to-end checks
   that a seeded-UNSAT run names the known culprit and that the
   certificate's claims are verifiable against the problem. *)

module Graph = Netembed_graph.Graph
module Attrs = Netembed_attr.Attrs
module Value = Netembed_attr.Value
module Expr = Netembed_expr.Expr
module Telemetry = Netembed_telemetry.Telemetry
module Explain = Netembed_explain.Explain
module Model = Netembed_service.Model
module Service = Netembed_service.Service
module Request = Netembed_service.Request
module Wire = Netembed_service.Wire
open Netembed_core

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* Fixtures                                                            *)
(* ------------------------------------------------------------------ *)

let host_node name cpu =
  Attrs.of_list [ ("name", Value.String name); ("cpuMhz", Value.Float cpu) ]

let delay d = Attrs.of_list [ ("avgDelay", Value.Float d) ]

(* A 4-cycle of hosts with distinct names and cpu speeds. *)
let cycle_host () =
  let g = Graph.create ~name:"cycle" () in
  let cpus = [| 1200.0; 2400.0; 1800.0; 900.0 |] in
  let v =
    Array.init 4 (fun i ->
        Graph.add_node g (host_node (Printf.sprintf "plab-%d" i) cpus.(i)))
  in
  ignore (Graph.add_edge g v.(0) v.(1) (delay 10.0));
  ignore (Graph.add_edge g v.(1) v.(2) (delay 20.0));
  ignore (Graph.add_edge g v.(2) v.(3) (delay 30.0));
  ignore (Graph.add_edge g v.(3) v.(0) (delay 40.0));
  g

let edge_query () =
  let g = Graph.create ~name:"q" () in
  let a = Graph.add_node g Attrs.empty in
  let b = Graph.add_node g Attrs.empty in
  ignore (Graph.add_edge g a b Attrs.empty);
  g

let explain_options =
  { Engine.default_options with Engine.mode = Engine.All; explain = true }

let certificate result =
  match result.Engine.report with
  | Some c -> c
  | None -> Alcotest.fail "explain run returned no certificate"

(* ------------------------------------------------------------------ *)
(* Kernel units                                                        *)
(* ------------------------------------------------------------------ *)

let test_blame_ordering () =
  let b = Explain.Blame.create () in
  Explain.Blame.record b ~q:1 Explain.Cause.Node_constraint 5;
  Explain.Blame.record b ~q:1 Explain.Cause.Degree_filter 2;
  Explain.Blame.record b ~q:0 Explain.Cause.Node_constraint 1;
  Explain.Blame.record b ~q:2 Explain.Cause.Host_contention 0 (* no-op *);
  check Alcotest.(list int) "most-blamed node first" [ 1; 0 ]
    (Explain.Blame.nodes b);
  (match Explain.Blame.by_node b 1 with
  | (Explain.Cause.Node_constraint, 5) :: _ -> ()
  | _ -> Alcotest.fail "dominant cause should lead");
  check Alcotest.int "total_for" 7 (Explain.Blame.total_for b 1);
  check
    Alcotest.(list (pair string int))
    "label totals" [ ("node_constraint", 6); ("degree_filter", 2) ]
    (Explain.Blame.label_totals b)

let test_recorder_ring () =
  let r = Explain.Recorder.create ~capacity:4 ~sample_every:1 () in
  for d = 0 to 9 do
    Explain.Recorder.visit r ~depth:d ~host:d ~size:3
  done;
  check Alcotest.int "all pushes counted" 10 (Explain.Recorder.recorded r);
  let events = Explain.Recorder.events r in
  check Alcotest.int "ring keeps capacity" 4 (List.length events);
  check
    Alcotest.(list int)
    "oldest first, newest retained" [ 6; 7; 8; 9 ]
    (List.map (fun (e : Explain.Recorder.event) -> e.Explain.Recorder.depth) events)

let test_recorder_sampling () =
  let r = Explain.Recorder.create ~capacity:64 ~sample_every:8 () in
  for d = 0 to 31 do
    Explain.Recorder.visit r ~depth:d ~host:0 ~size:1
  done;
  Explain.Recorder.wipeout r ~depth:5 ~host:2;
  check Alcotest.int "1/8 visits plus the always-on wipeout" 5
    (Explain.Recorder.recorded r)

let test_requirements_extraction () =
  let ast = Expr.parse_exn "rSource.cpuMhz >= 3000 && 10 > rSource.load" in
  let reqs = Explain.requirements ~on:[ Netembed_expr.Ast.R_source ] ast in
  check Alcotest.int "two conjuncts extracted" 2 (List.length reqs);
  let strings = List.map Explain.requirement_to_string reqs in
  check Alcotest.bool "ge bound" true
    (List.mem "rSource.cpuMhz >= 3000" strings);
  (* 10 > rSource.load reads back as rSource.load < 10. *)
  check Alcotest.bool "flipped operand order" true
    (List.mem "rSource.load < 10" strings)

let test_near_misses () =
  let reqs =
    Explain.requirements ~on:[ Netembed_expr.Ast.R_source ]
      (Expr.parse_exn "rSource.cpuMhz >= 3000")
  in
  let items =
    [
      (0, "slow", Attrs.of_list [ ("cpuMhz", Value.Float 1000.0) ]);
      (1, "close", Attrs.of_list [ ("cpuMhz", Value.Float 2400.0) ]);
      (2, "fits", Attrs.of_list [ ("cpuMhz", Value.Float 4000.0) ]);
    ]
  in
  match Explain.near_misses ~reqs ~items ~limit:2 with
  | best :: _ ->
      check Alcotest.string "smallest shortfall ranks first" "close"
        best.Explain.label;
      check Alcotest.bool "renders the delta" true
        (let s = Explain.near_miss_to_string best in
         String.length s > 0
         &&
         let has sub =
           let n = String.length sub in
           let rec go i =
             i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
           in
           go 0
         in
         has "2400")
  | [] -> Alcotest.fail "expected a near miss"

(* ------------------------------------------------------------------ *)
(* Seeded-UNSAT culprits through the engine                            *)
(* ------------------------------------------------------------------ *)

(* Every host is too slow for the node constraint: the certificate must
   blame Node_constraint and show the fastest host as the near miss. *)
let test_node_constraint_culprit () =
  let problem =
    Problem.make
      ~node_constraint:(Expr.parse_exn "rSource.cpuMhz >= 3000")
      ~host:(cycle_host ()) ~query:(edge_query ()) Expr.always
  in
  let result = Engine.run ~options:explain_options Engine.ECF problem in
  check Alcotest.string "verdict" "unsat" (Engine.verdict result);
  let cert = certificate result in
  (match Explain.Certificate.primary_cause cert with
  | Some Explain.Cause.Node_constraint -> ()
  | c ->
      Alcotest.failf "expected Node_constraint culprit, got %s"
        (match c with Some c -> Explain.Cause.to_string c | None -> "none"));
  match cert.Explain.Certificate.blamed with
  | [] -> Alcotest.fail "no blamed node"
  | (b : Explain.Certificate.blamed) :: _ -> (
      check Alcotest.int "requirement extracted" 1
        (List.length b.Explain.Certificate.requirements);
      match b.Explain.Certificate.near with
      | (best : Explain.near_miss) :: _ ->
          (* plab-1 has 2400 MHz, the closest to the 3000 bound. *)
          check Alcotest.string "best near miss" "plab-1" best.Explain.label
      | [] -> Alcotest.fail "no near-miss hosts")

(* Query edge demands a delay no host edge offers: Edge_constraint. *)
let test_edge_constraint_culprit () =
  let problem =
    Problem.make ~host:(cycle_host ()) ~query:(edge_query ())
      (Expr.parse_exn "rEdge.avgDelay <= 5")
  in
  let result = Engine.run ~options:explain_options Engine.ECF problem in
  check Alcotest.string "verdict" "unsat" (Engine.verdict result);
  let cert = certificate result in
  match Explain.Certificate.primary_cause cert with
  | Some (Explain.Cause.Edge_constraint _) -> ()
  | c ->
      Alcotest.failf "expected Edge_constraint culprit, got %s"
        (match c with Some c -> Explain.Cause.to_string c | None -> "none")

(* A 5-clique query cannot embed in a 4-cycle: degrees are too small. *)
let test_degree_filter_culprit () =
  let host = cycle_host () in
  ignore (Graph.add_node host (host_node "spare" 100.0));
  let query = Netembed_topology.Regular.clique 5 in
  let problem = Problem.make ~host ~query Expr.always in
  let result = Engine.run ~options:explain_options Engine.ECF problem in
  check Alcotest.string "verdict" "unsat" (Engine.verdict result);
  let cert = certificate result in
  match Explain.Certificate.primary_cause cert with
  | Some Explain.Cause.Degree_filter -> ()
  | c ->
      Alcotest.failf "expected Degree_filter culprit, got %s"
        (match c with Some c -> Explain.Cause.to_string c | None -> "none")

(* LNS has no filter phase; its lazy rejections must still attribute. *)
let test_lns_blame () =
  let problem =
    Problem.make
      ~node_constraint:(Expr.parse_exn "rSource.cpuMhz >= 3000")
      ~host:(cycle_host ()) ~query:(edge_query ()) Expr.always
  in
  let result = Engine.run ~options:explain_options Engine.LNS problem in
  check Alcotest.string "verdict" "unsat" (Engine.verdict result);
  let cert = certificate result in
  match Explain.Certificate.primary_cause cert with
  | Some Explain.Cause.Node_constraint -> ()
  | _ -> Alcotest.fail "LNS should blame the node constraint"

(* ------------------------------------------------------------------ *)
(* UNSAT vs budget-exhausted                                           *)
(* ------------------------------------------------------------------ *)

let contains hay needle =
  let n = String.length needle in
  let rec go i = i + n <= String.length hay && (String.sub hay i n = needle || go (i + 1)) in
  go 0

(* A tight visit budget on a feasible clique gives up without proving
   anything: the verdict (and the telemetry snapshot) must say
   "exhausted", not "unsat". *)
let test_exhausted_vs_unsat () =
  let host = Netembed_topology.Regular.clique 8 in
  let query = Netembed_topology.Regular.clique 7 in
  let problem = Problem.make ~host ~query Expr.always in
  let starved =
    Engine.run
      ~options:
        { explain_options with Engine.max_visited = Some 1; mode = Engine.First }
      Engine.ECF problem
  in
  check Alcotest.string "gave up" "exhausted" (Engine.verdict starved);
  check Alcotest.bool "snapshot says exhausted" true
    (contains
       (Telemetry.snapshot_to_json starved.Engine.telemetry)
       "\"outcome\":\"exhausted\"");
  (match (certificate starved).Explain.Certificate.verdict with
  | "exhausted" -> ()
  | v -> Alcotest.failf "certificate verdict %s" v);
  let impossible =
    Problem.make ~host:(cycle_host ()) ~query:(Netembed_topology.Regular.clique 3)
      (Expr.parse_exn "rEdge.avgDelay <= 5")
  in
  let unsat = Engine.run ~options:explain_options Engine.ECF impossible in
  check Alcotest.string "proved" "unsat" (Engine.verdict unsat);
  check Alcotest.bool "snapshot says unsat" true
    (contains
       (Telemetry.snapshot_to_json unsat.Engine.telemetry)
       "\"outcome\":\"unsat\"")

(* ------------------------------------------------------------------ *)
(* Property: blamed domains are really empty                           *)
(* ------------------------------------------------------------------ *)

(* For a randomized cpu threshold, whenever the certificate claims a
   query node's domain was emptied by node-level causes, re-check
   against the problem: every host must indeed fail node_ok for it. *)
let prop_certificate_domains_empty =
  QCheck.Test.make ~count:60
    ~name:"certificate node-level claims empty the claimed domains"
    QCheck.(pair (int_bound 5000) (int_bound 1000))
    (fun (bound, jitter) ->
      let host = Graph.create () in
      let v =
        Array.init 5 (fun i ->
            Graph.add_node host
              (host_node
                 (Printf.sprintf "h%d" i)
                 (float_of_int (((i * 977) + jitter) mod 4000))))
      in
      for i = 0 to 4 do
        ignore (Graph.add_edge host v.(i) v.((i + 1) mod 5) (delay 10.0))
      done;
      let problem =
        Problem.make
          ~node_constraint:
            (Expr.parse_exn (Printf.sprintf "rSource.cpuMhz >= %d" bound))
          ~host ~query:(edge_query ()) Expr.always
      in
      let result = Engine.run ~options:explain_options Engine.ECF problem in
      match result.Engine.report with
      | None -> false
      | Some cert ->
          Engine.verdict result <> "unsat"
          || List.for_all
               (fun (b : Explain.Certificate.blamed) ->
                 (* Only when every elimination is node-level does the
                    certificate claim node_ok empties the domain. *)
                 let only_node_level =
                   List.for_all
                     (fun (c, _) ->
                       match c with
                       | Explain.Cause.Node_constraint
                       | Explain.Cause.Degree_filter ->
                           true
                       | _ -> false)
                     b.Explain.Certificate.causes
                 in
                 (not only_node_level)
                 ||
                 let q = b.Explain.Certificate.node in
                 let empty = ref true in
                 for r = 0 to Graph.node_count host - 1 do
                   if Problem.node_ok problem ~q ~r then empty := false
                 done;
                 !empty)
               cert.Explain.Certificate.blamed)

(* ------------------------------------------------------------------ *)
(* Service round-trip: EXPLAIN by request id                           *)
(* ------------------------------------------------------------------ *)

let test_service_explain_roundtrip () =
  let registry = Telemetry.Registry.create () in
  let service = Service.create ~registry (Model.create (cycle_host ())) in
  let request =
    Request.make ~node_constraint:"rSource.cpuMhz >= 3000" ~algorithm:Engine.ECF
      ~mode:Engine.All ~query:(edge_query ()) "true"
  in
  (match Service.submit service request with
  | Error e -> Alcotest.failf "submit failed: %s" e
  | Ok answer -> (
      check Alcotest.string "verdict on the answer" "unsat"
        (Engine.verdict answer.Service.result);
      match Service.explain service answer.Service.id with
      | None -> Alcotest.fail "no diagnostics retained"
      | Some entry ->
          check Alcotest.string "entry verdict" "unsat" entry.Service.verdict;
          let cert =
            match entry.Service.certificate with
            | Some c -> c
            | None -> Alcotest.fail "entry without certificate"
          in
          (match Explain.Certificate.primary_cause cert with
          | Some Explain.Cause.Node_constraint -> ()
          | _ -> Alcotest.fail "service certificate names the wrong culprit");
          let frame = Wire.encode_explanation entry in
          check Alcotest.bool "wire frame carries the verdict" true
            (contains frame "verdict=unsat");
          check Alcotest.bool "wire frame carries JSON" true
            (contains frame "\nJSON {")));
  let prometheus = Telemetry.Registry.to_prometheus registry in
  check Alcotest.bool "unsat counter incremented" true
    (contains prometheus
       "netembed_unsat_total{cause=\"node_constraint\"} 1");
  check Alcotest.bool "blame counters exported" true
    (contains prometheus "netembed_blame_eliminations_total")

let test_service_admission_certificate () =
  let host = Graph.create () in
  ignore
    (Graph.add_node host
       (Attrs.of_list
          [ ("name", Value.String "tiny"); ("cpuMhz", Value.Float 100.0) ]));
  ignore
    (Graph.add_node host
       (Attrs.of_list
          [ ("name", Value.String "small"); ("cpuMhz", Value.Float 200.0) ]));
  let registry = Telemetry.Registry.create () in
  let service = Service.create ~registry (Model.create host) in
  let query = Graph.create () in
  ignore (Graph.add_node query (Attrs.of_list [ ("cpuMhz", Value.Float 5000.0) ]));
  let request =
    Request.make ~algorithm:Engine.ECF ~mode:Engine.First ~query "true"
  in
  (match Service.submit service request with
  | Ok _ -> Alcotest.fail "expected an admission rejection"
  | Error e -> check Alcotest.bool "admission error" true (contains e "admission"));
  match Service.last_entry service with
  | None -> Alcotest.fail "admission rejection not logged"
  | Some entry -> (
      check Alcotest.string "verdict" "admission" entry.Service.verdict;
      match entry.Service.certificate with
      | None -> Alcotest.fail "admission entry without certificate"
      | Some cert ->
          check Alcotest.bool "residual note names the best host" true
            (List.exists
               (fun n -> contains n "small")
               cert.Explain.Certificate.notes))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "netembed explain"
    [
      ( "kernel",
        [
          Alcotest.test_case "blame ordering" `Quick test_blame_ordering;
          Alcotest.test_case "recorder ring" `Quick test_recorder_ring;
          Alcotest.test_case "recorder sampling" `Quick test_recorder_sampling;
          Alcotest.test_case "requirement extraction" `Quick
            test_requirements_extraction;
          Alcotest.test_case "near misses" `Quick test_near_misses;
        ] );
      ( "culprits",
        [
          Alcotest.test_case "node constraint" `Quick test_node_constraint_culprit;
          Alcotest.test_case "edge constraint" `Quick test_edge_constraint_culprit;
          Alcotest.test_case "degree filter" `Quick test_degree_filter_culprit;
          Alcotest.test_case "lns lazy blame" `Quick test_lns_blame;
          Alcotest.test_case "exhausted vs unsat" `Quick test_exhausted_vs_unsat;
        ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_certificate_domains_empty ] );
      ( "service",
        [
          Alcotest.test_case "explain round-trip" `Quick
            test_service_explain_roundtrip;
          Alcotest.test_case "admission certificate" `Quick
            test_service_admission_certificate;
        ] );
    ]
