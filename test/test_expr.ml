module Ast = Netembed_expr.Ast
module Lexer = Netembed_expr.Lexer
module Parser = Netembed_expr.Parser
module Eval = Netembed_expr.Eval
module Expr = Netembed_expr.Expr
module Attrs = Netembed_attr.Attrs
module Value = Netembed_attr.Value

let check = Alcotest.check

let env ?(v_edge = []) ?(r_edge = []) ?(v_source = []) ?(v_target = [])
    ?(r_source = []) ?(r_target = []) () =
  Eval.env ~v_edge:(Attrs.of_list v_edge) ~r_edge:(Attrs.of_list r_edge)
    ~v_source:(Attrs.of_list v_source) ~v_target:(Attrs.of_list v_target)
    ~r_source:(Attrs.of_list r_source) ~r_target:(Attrs.of_list r_target)

let parse = Expr.parse_exn

(* ------------------------------------------------------------------ *)
(* Lexer                                                               *)
(* ------------------------------------------------------------------ *)

let test_lexer_tokens () =
  let toks = List.map fst (Lexer.tokenize "a && b1 || !(x <= 2.5e2) != 'str'") in
  check Alcotest.int "count" 13 (List.length toks);
  check Alcotest.bool "first ident" true (List.nth toks 0 = Lexer.IDENT "a");
  check Alcotest.bool "and" true (List.nth toks 1 = Lexer.AND);
  check Alcotest.bool "number" true (List.exists (fun t -> t = Lexer.NUMBER 250.0) toks);
  check Alcotest.bool "string" true (List.exists (fun t -> t = Lexer.STRING "str") toks);
  check Alcotest.bool "eof last" true (List.nth toks 12 = Lexer.EOF)

let test_lexer_errors () =
  (match Lexer.tokenize "a # b" with
  | exception Lexer.Lex_error _ -> ()
  | _ -> Alcotest.fail "expected Lex_error on #");
  match Lexer.tokenize "'unterminated" with
  | exception Lexer.Lex_error _ -> ()
  | _ -> Alcotest.fail "expected Lex_error on unterminated string"

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)
(* ------------------------------------------------------------------ *)

let test_precedence () =
  (* * binds over +, relational over &&, && over ||. *)
  let e = parse "1 + 2 * 3 < 8 && true || false" in
  check Alcotest.bool "structure" true
    (Ast.equal e
       (Ast.Binop
          ( Ast.Or,
            Ast.Binop
              ( Ast.And,
                Ast.Binop
                  ( Ast.Lt,
                    Ast.Binop
                      (Ast.Add, Ast.Num 1.0, Ast.Binop (Ast.Mul, Ast.Num 2.0, Ast.Num 3.0)),
                    Ast.Num 8.0 ),
                Ast.Bool true ),
            Ast.Bool false )))

let test_left_assoc () =
  let e = parse "10 - 4 - 3" in
  check Alcotest.bool "left assoc" true
    (Ast.equal e
       (Ast.Binop (Ast.Sub, Ast.Binop (Ast.Sub, Ast.Num 10.0, Ast.Num 4.0), Ast.Num 3.0)))

let test_attr_access () =
  check Alcotest.bool "vEdge.avgDelay" true
    (Ast.equal (parse "vEdge.avgDelay") (Ast.Attr (Ast.V_edge, "avgDelay")));
  check Alcotest.bool "rTarget.osType" true
    (Ast.equal (parse "rTarget.osType") (Ast.Attr (Ast.R_target, "osType")))

let test_call_parse () =
  check Alcotest.bool "two args" true
    (Ast.equal
       (parse "isBoundTo(vSource.osType, rSource.osType)")
       (Ast.Call
          ( "isBoundTo",
            [ Ast.Attr (Ast.V_source, "osType"); Ast.Attr (Ast.R_source, "osType") ] )))

let test_parse_errors () =
  List.iter
    (fun src ->
      match Expr.parse src with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "expected parse failure for %S" src)
    [ "vEdge."; "bogusObj.x < 1"; "1 +"; "(1 < 2"; "1 2"; "justAnIdent"; "" ]

(* Table-driven position checks, one row per malformed input: the
   reported line/column and offending token must pinpoint the problem
   (minicaml-style expectation tables). *)
let test_error_positions () =
  let lex_cases =
    (* src, expected (line, column) *)
    [
      ("a # b", (1, 3));
      ("1 < 2 &&\n  'unterminated", (2, 3));
      ("\n\n  ?", (3, 3));
    ]
  in
  List.iter
    (fun (src, (line, col)) ->
      match Lexer.tokenize src with
      | exception Lexer.Lex_error { pos; _ } ->
          check Alcotest.(pair int int)
            (Printf.sprintf "lex position of %S" src)
            (line, col)
            (pos.Lexer.line, pos.Lexer.column)
      | _ -> Alcotest.failf "expected Lex_error for %S" src)
    lex_cases;
  let parse_cases =
    (* src, expected (line, column), substring of the offending token *)
    [
      ("vEdge.", (1, 7), "end of input");
      ("1 +", (1, 4), "end of input");
      ("(1 < 2", (1, 7), "end of input");
      ("1 2", (1, 3), "number 2");
      ("justAnIdent", (1, 1), "justAnIdent");
      ("bogusObj.x < 1", (1, 1), "bogusObj");
      ("rEdge.minDelay >\n  vEdge.maxDelay )", (2, 18), ")");
      ("rEdge.a <\n\nmin(1,", (3, 7), "end of input");
    ]
  in
  List.iter
    (fun (src, (line, col), token_part) ->
      match Parser.parse src with
      | exception Parser.Parse_error { pos; token; _ } ->
          check Alcotest.(pair int int)
            (Printf.sprintf "parse position of %S" src)
            (line, col)
            (pos.Lexer.line, pos.Lexer.column);
          let contains hay needle =
            let nh = String.length hay and nn = String.length needle in
            let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
            go 0
          in
          if not (contains token token_part) then
            Alcotest.failf "offending token for %S: wanted %S in %S" src token_part token
      | _ -> Alcotest.failf "expected Parse_error for %S" src)
    parse_cases

let test_roundtrip_paper_fragments () =
  (* The exact fragments from section VI-B must parse and round-trip. *)
  List.iter
    (fun src ->
      let e = parse src in
      let e' = parse (Ast.to_string e) in
      if not (Ast.equal e e') then Alcotest.failf "round trip failed for %S" src)
    [
      "vEdge.avgDelay>=0.90*rEdge.avgDelay && vEdge.avgDelay<=1.10*rEdge.avgDelay";
      "vEdge.avgDelay>=rEdge.minDelay && vEdge.avgDelay<=rEdge.maxDelay";
      "isBoundTo(vSource.osType, rSource.osType)";
      "isBoundTo(vSource.bindTo, rSource.name)";
      "sqrt( (vSource.x-vTarget.x)*(vSource.x-vTarget.x) + \
       (vSource.y-vTarget.y)*(vSource.y-vTarget.y) ) < 100.0";
    ]

(* ------------------------------------------------------------------ *)
(* Evaluator                                                           *)
(* ------------------------------------------------------------------ *)

let accepts ?v_edge ?r_edge ?v_source ?v_target ?r_source ?r_target src =
  Eval.accepts (env ?v_edge ?r_edge ?v_source ?v_target ?r_source ?r_target ()) (parse src)

let test_eval_arith () =
  check Alcotest.bool "arith" true (accepts "1 + 2 * 3 == 7");
  check Alcotest.bool "div" true (accepts "10 / 4 == 2.5");
  check Alcotest.bool "neg" true (accepts "-3 + 5 == 2");
  check Alcotest.bool "abs" true (accepts "abs(0 - 4) == 4");
  check Alcotest.bool "sqrt" true (accepts "sqrt(9) == 3");
  check Alcotest.bool "min/max" true (accepts "min(2, 5) == 2 && max(2, 5) == 5");
  check Alcotest.bool "floor/ceil" true (accepts "floor(2.7) == 2 && ceil(2.1) == 3")

let test_eval_bool () =
  check Alcotest.bool "not" true (accepts "!(1 > 2)");
  check Alcotest.bool "and short-circuit" false (accepts "false && 1 / 0 == 1");
  check Alcotest.bool "or short-circuit" true (accepts "true || 1 / 0 == 1")

let test_eval_strings () =
  check Alcotest.bool "eq" true (accepts "'abc' == 'abc'");
  check Alcotest.bool "neq" true (accepts "'abc' != 'abd'");
  check Alcotest.bool "order" true (accepts "'abc' < 'abd'")

let test_eval_attrs () =
  check Alcotest.bool "attr read" true
    (accepts ~v_edge:[ ("avgDelay", Value.Float 50.0) ]
       ~r_edge:[ ("avgDelay", Value.Float 52.0) ]
       "vEdge.avgDelay >= 0.90 * rEdge.avgDelay && vEdge.avgDelay <= 1.10 * rEdge.avgDelay");
  check Alcotest.bool "int attr mixes with float" true
    (accepts ~r_source:[ ("cpuMhz", Value.Int 2000) ] "rSource.cpuMhz / 2 == 1000")

let test_missing_attr_is_false () =
  check Alcotest.bool "missing rejects" false (accepts "rEdge.nonexistent < 5");
  (* ... but short-circuiting can avoid touching it. *)
  check Alcotest.bool "short-circuit avoids missing" true
    (accepts "true || rEdge.nonexistent < 5")

let test_is_bound_to () =
  let bound = "isBoundTo(vSource.osType, rSource.osType)" in
  check Alcotest.bool "both present equal" true
    (accepts
       ~v_source:[ ("osType", Value.String "linux") ]
       ~r_source:[ ("osType", Value.String "linux") ]
       bound);
  check Alcotest.bool "both present different" false
    (accepts
       ~v_source:[ ("osType", Value.String "linux") ]
       ~r_source:[ ("osType", Value.String "bsd") ]
       bound);
  (* Query side lacks the attribute: unconstrained. *)
  check Alcotest.bool "query side missing -> true" true
    (accepts ~r_source:[ ("osType", Value.String "bsd") ] bound);
  check Alcotest.bool "query side missing, host missing too" true (accepts bound);
  (* Query side present but host lacks it: no match. *)
  check Alcotest.bool "host side missing -> false" false
    (accepts ~v_source:[ ("osType", Value.String "linux") ] bound)

let test_eval_errors () =
  let expect_error src =
    match Eval.eval (env ()) (parse src) with
    | exception Eval.Eval_error _ -> ()
    | _ -> Alcotest.failf "expected Eval_error for %S" src
  in
  expect_error "1 / 0 == 1";
  expect_error "sqrt(0 - 1) == 1";
  expect_error "'a' + 1 == 2";
  expect_error "!5 == 1";
  expect_error "unknownFun(1) == 1";
  expect_error "abs(1, 2) == 1";
  expect_error "true < false";
  (* Non-boolean top level rejected by accepts. *)
  match Eval.accepts (env ()) (parse "1 + 1") with
  | exception Eval.Eval_error _ -> ()
  | _ -> Alcotest.fail "expected Eval_error for non-bool constraint"

let test_swap_orientation () =
  let e = env ~r_source:[ ("x", Value.Float 1.0) ] ~r_target:[ ("x", Value.Float 2.0) ] () in
  check Alcotest.bool "forward" true (Eval.accepts e (parse "rSource.x < rTarget.x"));
  check Alcotest.bool "swapped" false
    (Eval.accepts (Eval.swap_r_orientation e) (parse "rSource.x < rTarget.x"))

(* ------------------------------------------------------------------ *)
(* Specializer                                                         *)
(* ------------------------------------------------------------------ *)

let test_specialize_agrees () =
  let v_edge = Attrs.of_list [ ("minDelay", Value.Float 10.0); ("maxDelay", Value.Float 20.0) ] in
  let v_source = Attrs.of_list [ ("osType", Value.String "linux") ] in
  let exprs =
    [
      "rEdge.minDelay >= vEdge.minDelay && rEdge.maxDelay <= vEdge.maxDelay";
      "isBoundTo(vSource.osType, rSource.osType)";
      "isBoundTo(vSource.city, rSource.city)";
      "vEdge.minDelay * 2 < rEdge.avgDelay || rEdge.avgDelay < 1";
      "true || vEdge.absent > 1";
      "vEdge.absent > 1 || rEdge.avgDelay > 0";
    ]
  in
  List.iter
    (fun src ->
      let e = parse src in
      let residual = Eval.specialize ~v_edge ~v_source ~v_target:Attrs.empty e in
      (* Against several host-side environments the residual must agree
         with the unspecialized expression. *)
      List.iter
        (fun (r_edge, r_source) ->
          let full =
            Eval.env ~v_edge ~v_source ~v_target:Attrs.empty
              ~r_edge:(Attrs.of_list r_edge) ~r_source:(Attrs.of_list r_source)
              ~r_target:Attrs.empty
          in
          let got = Eval.accepts full residual in
          let want = Eval.accepts full e in
          if got <> want then
            Alcotest.failf "specialize disagrees on %S (want %b, got %b)" src want got)
        [
          ([ ("minDelay", Value.Float 12.0); ("maxDelay", Value.Float 18.0); ("avgDelay", Value.Float 15.0) ],
           [ ("osType", Value.String "linux"); ("city", Value.String "bos") ]);
          ([ ("minDelay", Value.Float 5.0); ("maxDelay", Value.Float 30.0); ("avgDelay", Value.Float 0.5) ],
           [ ("osType", Value.String "bsd") ]);
          ([], []);
        ])
    exprs

let test_specialize_folds () =
  (* Constant subtrees collapse: the residual of a fully-v-side
     constraint is a literal. *)
  let v_edge = Attrs.of_list [ ("minDelay", Value.Float 10.0) ] in
  let residual =
    Eval.specialize ~v_edge ~v_source:Attrs.empty ~v_target:Attrs.empty
      (parse "vEdge.minDelay * 2 == 20")
  in
  check Alcotest.bool "folded to literal" true
    (match residual with Ast.Lit (Value.Bool true) -> true | _ -> false)

(* ------------------------------------------------------------------ *)
(* Stock constraints                                                   *)
(* ------------------------------------------------------------------ *)

let test_stock_constraints () =
  let e =
    env
      ~v_edge:[ ("minDelay", Value.Float 10.0); ("maxDelay", Value.Float 20.0) ]
      ~r_edge:
        [ ("minDelay", Value.Float 11.0); ("avgDelay", Value.Float 15.0);
          ("maxDelay", Value.Float 19.0) ]
      ()
  in
  check Alcotest.bool "range within" true (Expr.accepts e Expr.delay_range_within);
  check Alcotest.bool "avg within" true (Expr.accepts e Expr.avg_delay_within);
  check Alcotest.bool "always" true (Expr.accepts e Expr.always);
  let tol =
    env
      ~v_edge:[ ("avgDelay", Value.Float 100.0) ]
      ~r_edge:[ ("avgDelay", Value.Float 105.0) ]
      ()
  in
  check Alcotest.bool "10%% tolerance ok" true (Expr.accepts tol (Expr.delay_tolerance 0.10));
  check Alcotest.bool "3%% tolerance fails" false (Expr.accepts tol (Expr.delay_tolerance 0.03))

(* Random-expression property: printing and reparsing preserves meaning. *)

let gen_expr =
  let open QCheck.Gen in
  let leaf =
    oneof
      [
        map (fun b -> Ast.Bool b) bool;
        map (fun n -> Ast.Num (float_of_int n)) (int_range 0 20);
        return (Ast.Attr (Ast.R_edge, "x"));
        return (Ast.Attr (Ast.V_edge, "y"));
      ]
  in
  let rec expr depth =
    if depth = 0 then leaf
    else
      oneof
        [
          leaf;
          map2 (fun a b -> Ast.Binop (Ast.Add, a, b)) (expr (depth - 1)) (expr (depth - 1));
          map2 (fun a b -> Ast.Binop (Ast.Mul, a, b)) (expr (depth - 1)) (expr (depth - 1));
          map2 (fun a b -> Ast.Binop (Ast.Lt, a, b)) (expr (depth - 1)) (expr (depth - 1));
          map (fun a -> Ast.Unop (Ast.Neg, a)) (expr (depth - 1));
        ]
  in
  expr 4

(* Property: specialization never changes `accepts` semantics, for any
   split of attributes between query and host sides. *)
let gen_env_expr =
  let open QCheck.Gen in
  let names = [| "a"; "b"; "c" |] in
  let gen_obj =
    oneofl [ Ast.V_edge; Ast.V_source; Ast.V_target; Ast.R_edge; Ast.R_source; Ast.R_target ]
  in
  let leaf =
    oneof
      [
        map (fun b -> Ast.Bool b) bool;
        map (fun n -> Ast.Num (float_of_int n)) (int_range 0 9);
        map2 (fun o i -> Ast.Attr (o, names.(i))) gen_obj (int_range 0 2);
      ]
  in
  let rec expr depth =
    if depth = 0 then leaf
    else
      oneof
        [
          leaf;
          map2 (fun a b -> Ast.Binop (Ast.Add, a, b)) (expr (depth - 1)) (expr (depth - 1));
          map2 (fun a b -> Ast.Binop (Ast.Lt, a, b)) (expr (depth - 1)) (expr (depth - 1));
          map2 (fun a b -> Ast.Binop (Ast.And, a, b)) (expr (depth - 1)) (expr (depth - 1));
          map2 (fun a b -> Ast.Binop (Ast.Or, a, b)) (expr (depth - 1)) (expr (depth - 1));
          map2
            (fun a b -> Ast.Call ("isBoundTo", [ a; b ]))
            (expr (depth - 1)) (expr (depth - 1));
        ]
  in
  let gen_table =
    (* Each of a,b,c present with probability 2/3, with small numbers. *)
    map
      (fun vals ->
        List.fold_left
          (fun acc (name, v) ->
            match v with Some x -> Attrs.add name (Value.Float (float_of_int x)) acc | None -> acc)
          Attrs.empty
          (List.combine [ "a"; "b"; "c" ] vals))
      (list_repeat 3 (opt (int_range 0 9)))
  in
  tup4 (expr 3) gen_table gen_table gen_table

let prop_specialize_equivalent =
  QCheck.Test.make ~name:"specialize preserves accepts on random exprs" ~count:500
    (QCheck.make gen_env_expr)
    (fun (e, v_edge, v_source, r_edge) ->
      let env =
        Eval.env ~v_edge ~v_source ~v_target:Attrs.empty ~r_edge ~r_source:r_edge
          ~r_target:Attrs.empty
      in
      let residual = Eval.specialize ~v_edge ~v_source ~v_target:Attrs.empty e in
      let run expr = match Eval.accepts env expr with b -> Some b | exception Eval.Eval_error _ -> None in
      run e = run residual)

let prop_print_parse_roundtrip =
  QCheck.Test.make ~name:"print/parse roundtrip preserves AST" ~count:500
    (QCheck.make ~print:Ast.to_string gen_expr)
    (fun e ->
      match Expr.parse (Ast.to_string e) with
      | Ok e' -> Ast.equal e e'
      | Error _ -> false)

let prop_parser_total =
  QCheck.Test.make ~name:"parse_result is total on arbitrary strings" ~count:500
    QCheck.(string_of_size (QCheck.Gen.int_range 0 60))
    (fun s -> match Expr.parse s with Ok _ | Error _ -> true)

let () =
  Alcotest.run "expr"
    [
      ( "lexer",
        [
          Alcotest.test_case "tokens" `Quick test_lexer_tokens;
          Alcotest.test_case "errors" `Quick test_lexer_errors;
        ] );
      ( "parser",
        [
          Alcotest.test_case "precedence" `Quick test_precedence;
          Alcotest.test_case "left associativity" `Quick test_left_assoc;
          Alcotest.test_case "attr access" `Quick test_attr_access;
          Alcotest.test_case "calls" `Quick test_call_parse;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "error positions" `Quick test_error_positions;
          Alcotest.test_case "paper fragments" `Quick test_roundtrip_paper_fragments;
          QCheck_alcotest.to_alcotest prop_print_parse_roundtrip;
          QCheck_alcotest.to_alcotest prop_parser_total;
          QCheck_alcotest.to_alcotest prop_specialize_equivalent;
        ] );
      ( "eval",
        [
          Alcotest.test_case "arithmetic" `Quick test_eval_arith;
          Alcotest.test_case "booleans" `Quick test_eval_bool;
          Alcotest.test_case "strings" `Quick test_eval_strings;
          Alcotest.test_case "attributes" `Quick test_eval_attrs;
          Alcotest.test_case "missing attrs" `Quick test_missing_attr_is_false;
          Alcotest.test_case "isBoundTo" `Quick test_is_bound_to;
          Alcotest.test_case "errors" `Quick test_eval_errors;
          Alcotest.test_case "orientation swap" `Quick test_swap_orientation;
        ] );
      ( "specialize",
        [
          Alcotest.test_case "agrees with eval" `Quick test_specialize_agrees;
          Alcotest.test_case "constant folding" `Quick test_specialize_folds;
        ] );
      ( "stock", [ Alcotest.test_case "constraints" `Quick test_stock_constraints ] );
    ]
