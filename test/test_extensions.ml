(* Tests for the paper's future-work extensions: optimization-stage
   ranking (Optimize), link-to-path embedding (Path_embed) and
   temporal scheduling (Schedule). *)

module Graph = Netembed_graph.Graph
module Attrs = Netembed_attr.Attrs
module Value = Netembed_attr.Value
module Expr = Netembed_expr.Expr
module Rng = Netembed_rng.Rng
module Schedule = Netembed_service.Schedule
open Netembed_core

let check = Alcotest.check

let delay d = Attrs.of_list [ ("avgDelay", Value.Float d) ]
let band lo hi = Attrs.of_list [ ("minDelay", Value.Float lo); ("maxDelay", Value.Float hi) ]

(* Host: 0-1 (10ms), 1-2 (20ms), 2-3 (10ms), 3-0 (20ms). *)
let ring_host () =
  let g = Graph.create () in
  let v = Array.init 4 (fun _ -> Graph.add_node g Attrs.empty) in
  ignore (Graph.add_edge g v.(0) v.(1) (delay 10.0));
  ignore (Graph.add_edge g v.(1) v.(2) (delay 20.0));
  ignore (Graph.add_edge g v.(2) v.(3) (delay 10.0));
  ignore (Graph.add_edge g v.(3) v.(0) (delay 20.0));
  g

let single_edge_query lo hi =
  let g = Graph.create () in
  let a = Graph.add_node g Attrs.empty and b = Graph.add_node g Attrs.empty in
  ignore (Graph.add_edge g a b (band lo hi));
  g

(* ------------------------------------------------------------------ *)
(* Optimize                                                            *)
(* ------------------------------------------------------------------ *)

let test_optimize_best () =
  let p = Problem.make ~host:(ring_host ()) ~query:(single_edge_query 5.0 25.0) Expr.avg_delay_within in
  let all = Engine.find_all Engine.ECF p in
  (* Edges with delay in [5,25]: all four; two of delay 10, two of 20,
     each in two orientations -> 8 mappings. *)
  check Alcotest.int "eight mappings" 8 (List.length all);
  (match Optimize.best_of p ~cost:Optimize.total_avg_delay all with
  | None -> Alcotest.fail "expected a best mapping"
  | Some m ->
      check (Alcotest.float 1e-9) "cheapest uses a 10ms link" 10.0
        (Optimize.total_avg_delay p m));
  let ranked = Optimize.rank p ~cost:Optimize.total_avg_delay all in
  check Alcotest.int "all ranked" 8 (List.length ranked);
  let costs = List.map snd ranked in
  check Alcotest.bool "ascending" true (costs = List.sort Float.compare costs);
  check (Alcotest.float 1e-9) "worst is 20ms" 20.0 (List.nth costs 7)

let test_optimize_find_best () =
  let p = Problem.make ~host:(ring_host ()) ~query:(single_edge_query 5.0 25.0) Expr.avg_delay_within in
  match Optimize.find_best Engine.ECF p ~cost:Optimize.total_avg_delay with
  | Some (m, c) ->
      check (Alcotest.float 1e-9) "best cost" 10.0 c;
      check Alcotest.bool "valid" true (Verify.is_valid p m)
  | None -> Alcotest.fail "expected a result"

let test_optimize_stock_costs () =
  let host = ring_host () in
  Graph.set_node_attrs host 0 (Attrs.of_list [ ("load", Value.Float 0.9) ]);
  Graph.set_node_attrs host 1 (Attrs.of_list [ ("load", Value.Float 0.1) ]);
  let p = Problem.make ~host ~query:(single_edge_query 5.0 25.0) Expr.avg_delay_within in
  let m01 = Mapping.of_array [| 0; 1 |] in
  check (Alcotest.float 1e-9) "load sum" 1.0 (Optimize.node_attr_sum "load" p m01);
  check (Alcotest.float 1e-9) "degree sum" 4.0 (Optimize.total_host_degree p m01);
  check (Alcotest.float 1e-9) "max delay" 10.0 (Optimize.max_avg_delay p m01)

(* ------------------------------------------------------------------ *)
(* Path_embed                                                          *)
(* ------------------------------------------------------------------ *)

let test_closure_structure () =
  (* Line 0-1-2: 2-hop closure adds 0-2 with summed delay. *)
  let host = Graph.create () in
  let v = Array.init 3 (fun _ -> Graph.add_node host Attrs.empty) in
  ignore (Graph.add_edge host v.(0) v.(1) (delay 10.0));
  ignore (Graph.add_edge host v.(1) v.(2) (delay 15.0));
  let c = Path_embed.closure ~max_hops:2 host in
  let aug = Path_embed.host c in
  check Alcotest.int "3 closure edges" 3 (Graph.edge_count aug);
  (match Graph.find_edge aug 0 2 with
  | None -> Alcotest.fail "missing path edge 0-2"
  | Some e ->
      check (Alcotest.option (Alcotest.float 1e-9)) "summed delay" (Some 25.0)
        (Attrs.float "avgDelay" (Graph.edge_attrs aug e));
      check Alcotest.(list int) "underlying path" [ 0; 1; 2 ] (Path_embed.path_of_edge c e))

let test_closure_picks_cheapest () =
  (* Two 2-hop routes from 0 to 3: via 1 (10+10) and via 2 (30+30);
     the closure must keep the cheap one. *)
  let host = Graph.create () in
  let v = Array.init 4 (fun _ -> Graph.add_node host Attrs.empty) in
  ignore (Graph.add_edge host v.(0) v.(1) (delay 10.0));
  ignore (Graph.add_edge host v.(1) v.(3) (delay 10.0));
  ignore (Graph.add_edge host v.(0) v.(2) (delay 30.0));
  ignore (Graph.add_edge host v.(2) v.(3) (delay 30.0));
  let c = Path_embed.closure ~max_hops:2 host in
  match Graph.find_edge (Path_embed.host c) 0 3 with
  | None -> Alcotest.fail "missing path edge"
  | Some e ->
      check (Alcotest.option (Alcotest.float 1e-9)) "cheapest kept" (Some 20.0)
        (Attrs.float "avgDelay" (Graph.edge_attrs (Path_embed.host c) e));
      check Alcotest.(list int) "via node 1" [ 0; 1; 3 ] (Path_embed.path_of_edge c e)

let test_embed_with_paths () =
  (* A query link demanding <= 30ms end-to-end that no single host link
     satisfies between far nodes; a 2-hop path does. *)
  let host = Graph.create () in
  let v = Array.init 3 (fun _ -> Graph.add_node host Attrs.empty) in
  ignore (Graph.add_edge host v.(0) v.(1) (delay 12.0));
  ignore (Graph.add_edge host v.(1) v.(2) (delay 14.0));
  (* Query: one link in [25, 30]: only the 0-1-2 path (26ms) fits. *)
  let query = single_edge_query 25.0 30.0 in
  (match
     Path_embed.embed_with_paths ~max_hops:2 Engine.ECF ~host ~query
       Expr.avg_delay_within
   with
  | None -> Alcotest.fail "expected a path embedding"
  | Some (m, decoded) -> (
      let ends = List.sort compare [ Mapping.apply m 0; Mapping.apply m 1 ] in
      check Alcotest.(list int) "spans the line" [ 0; 2 ] ends;
      match decoded with
      | [ (_, path) ] -> check Alcotest.int "2-hop path" 3 (List.length path)
      | _ -> Alcotest.fail "expected one decoded edge"));
  (* Without path mapping the same query is infeasible. *)
  let p = Problem.make ~host ~query Expr.avg_delay_within in
  check Alcotest.bool "one-to-one infeasible" true (Engine.find_first Engine.ECF p = None)

let test_closure_bandwidth_bottleneck () =
  let bw d b =
    Attrs.of_list [ ("avgDelay", Value.Float d); ("bandwidth", Value.Float b) ]
  in
  let host = Graph.create () in
  let v = Array.init 3 (fun _ -> Graph.add_node host Attrs.empty) in
  ignore (Graph.add_edge host v.(0) v.(1) (bw 10.0 100.0));
  ignore (Graph.add_edge host v.(1) v.(2) (bw 10.0 25.0));
  let c = Path_embed.closure ~max_hops:2 host in
  match Graph.find_edge (Path_embed.host c) 0 2 with
  | None -> Alcotest.fail "missing path edge"
  | Some e ->
      check (Alcotest.option (Alcotest.float 1e-9)) "bottleneck bandwidth" (Some 25.0)
        (Attrs.float "bandwidth" (Graph.edge_attrs (Path_embed.host c) e))

let test_closure_rejects () =
  match Path_embed.closure ~max_hops:0 (ring_host ()) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected rejection"

(* ------------------------------------------------------------------ *)
(* Schedule                                                            *)
(* ------------------------------------------------------------------ *)

let test_schedule_immediate () =
  let s = Schedule.create (ring_host ()) in
  match
    Schedule.earliest s ~now:100.0 ~duration:50.0 ~query:(single_edge_query 5.0 15.0)
      Expr.avg_delay_within
  with
  | Error m -> Alcotest.fail m
  | Ok placement ->
      check (Alcotest.float 1e-9) "starts now" 100.0 placement.Schedule.start;
      check (Alcotest.float 1e-9) "window" 150.0 placement.Schedule.finish

let test_schedule_waits_for_lease () =
  let s = Schedule.create (ring_host ()) in
  (* Occupy hosts 0 and 2 until t=200: the delay-10 links (0-1 and 2-3)
     are both blocked, so a [5,15] query must wait. *)
  Schedule.book s
    { Schedule.mapping = Mapping.of_array [| 0; 2 |]; start = 0.0; finish = 200.0 };
  check Alcotest.(list int) "busy now" [ 0; 2 ] (Schedule.busy_at s 100.0);
  match
    Schedule.earliest s ~now:100.0 ~duration:10.0 ~query:(single_edge_query 5.0 15.0)
      Expr.avg_delay_within
  with
  | Error m -> Alcotest.fail m
  | Ok placement ->
      check (Alcotest.float 1e-9) "deferred to lease expiry" 200.0 placement.Schedule.start;
      (* Booking it then shows up as a lease. *)
      Schedule.book s placement;
      check Alcotest.int "two leases" 2 (List.length (Schedule.leases s));
      check Alcotest.int "expired cleanup" 1 (Schedule.release_expired s ~now:205.0)

let test_schedule_infeasible () =
  let s = Schedule.create (ring_host ()) in
  match
    Schedule.earliest s ~now:0.0 ~duration:10.0 ~query:(single_edge_query 500.0 600.0)
      Expr.avg_delay_within
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected infeasibility"

(* Windows are half-open [start, finish): a lease ending exactly at a
   candidate start does not block it. *)
let test_schedule_lease_boundary () =
  let s = Schedule.create (ring_host ()) in
  (* Blocks both delay-10 links until exactly t=100. *)
  Schedule.book s
    { Schedule.mapping = Mapping.of_array [| 0; 2 |]; start = 0.0; finish = 100.0 };
  (* A window starting at the lease's exact end is free... *)
  (match
     Schedule.earliest s ~now:100.0 ~duration:10.0 ~query:(single_edge_query 5.0 15.0)
       Expr.avg_delay_within
   with
  | Error m -> Alcotest.fail m
  | Ok p -> check (Alcotest.float 1e-9) "lease end is usable" 100.0 p.Schedule.start);
  (* ...and a lease expiring exactly at `now` is also already gone from
     the busy set (gc uses the same half-open convention). *)
  check Alcotest.(list int) "not busy at own finish" [] (Schedule.busy_at s 100.0);
  (* But one instant earlier the lease still blocks, deferring to its
     expiry. *)
  let s2 = Schedule.create (ring_host ()) in
  Schedule.book s2
    { Schedule.mapping = Mapping.of_array [| 0; 2 |]; start = 0.0; finish = 100.0 };
  match
    Schedule.earliest s2 ~now:99.0 ~duration:10.0 ~query:(single_edge_query 5.0 15.0)
      Expr.avg_delay_within
  with
  | Error m -> Alcotest.fail m
  | Ok p -> check (Alcotest.float 1e-9) "deferred to expiry" 100.0 p.Schedule.start

let test_schedule_zero_duration () =
  let s = Schedule.create (ring_host ()) in
  (* On an idle network a zero-duration request starts immediately and
     occupies a degenerate window. *)
  (match
     Schedule.earliest s ~now:42.0 ~duration:0.0 ~query:(single_edge_query 5.0 15.0)
       Expr.avg_delay_within
   with
  | Error m -> Alcotest.fail m
  | Ok p ->
      check (Alcotest.float 1e-9) "starts now" 42.0 p.Schedule.start;
      check (Alcotest.float 1e-9) "degenerate window" 42.0 p.Schedule.finish);
  (* An instant strictly inside a lease is still busy for duration 0. *)
  Schedule.book s
    { Schedule.mapping = Mapping.of_array [| 0; 2 |]; start = 0.0; finish = 200.0 };
  match
    Schedule.earliest s ~now:100.0 ~duration:0.0 ~query:(single_edge_query 5.0 15.0)
      Expr.avg_delay_within
  with
  | Error m -> Alcotest.fail m
  | Ok p -> check (Alcotest.float 1e-9) "deferred past the lease" 200.0 p.Schedule.start

(* With a ledger attached, booked leases hold full-capacity charges and
   the internal gc (run by earliest) credits them back at expiry. *)
let test_schedule_gc_releases_charges () =
  let module Ledger = Netembed_ledger.Ledger in
  let host = Graph.create () in
  let node = Attrs.of_list [ ("cpuMhz", Value.Int 1000) ] in
  let v = Array.init 4 (fun _ -> Graph.add_node host node) in
  ignore (Graph.add_edge host v.(0) v.(1) (delay 10.0));
  ignore (Graph.add_edge host v.(1) v.(2) (delay 20.0));
  ignore (Graph.add_edge host v.(2) v.(3) (delay 10.0));
  ignore (Graph.add_edge host v.(3) v.(0) (delay 20.0));
  let ledger = Ledger.of_graph host in
  let s = Schedule.create ~ledger host in
  (match
     Schedule.earliest s ~now:0.0 ~duration:50.0 ~query:(single_edge_query 5.0 15.0)
       Expr.avg_delay_within
   with
  | Error m -> Alcotest.fail m
  | Ok p ->
      Schedule.book s p;
      (* The lease's hosts are fully charged while it runs. *)
      List.iter
        (fun (_, h) ->
          check (Alcotest.float 0.0) "host locked" 0.0
            (Ledger.residual ledger (Ledger.Node h) "cpuMhz"))
        (Mapping.to_list p.Schedule.mapping));
  check Alcotest.int "charges outstanding" 2 (Ledger.outstanding ledger);
  (* A later earliest() call gc's the expired lease and frees the
     charges before scanning windows. *)
  (match
     Schedule.earliest s ~now:60.0 ~duration:10.0 ~query:(single_edge_query 5.0 15.0)
       Expr.avg_delay_within
   with
  | Error m -> Alcotest.fail m
  | Ok p -> check (Alcotest.float 1e-9) "immediate" 60.0 p.Schedule.start);
  check Alcotest.int "gc'd lease" 0 (List.length (Schedule.leases s));
  check Alcotest.int "charges returned" 0 (Ledger.outstanding ledger);
  for i = 0 to 3 do
    check (Alcotest.float 0.0) "capacity restored exactly" 1000.0
      (Ledger.residual ledger (Ledger.Node i) "cpuMhz")
  done

let test_path_embed_decoded_paths_real () =
  (* Property on a real substrate: every decoded path is a genuine host
     walk and its summed delay satisfies the query band. *)
  let rng = Rng.make 77 in
  let host =
    Netembed_topology.Transit_stub.generate rng Netembed_topology.Transit_stub.default
  in
  let query = single_edge_query 20.0 200.0 in
  match
    Path_embed.embed_with_paths ~max_hops:3 Engine.ECF ~host ~query Expr.avg_delay_within
  with
  | None -> Alcotest.fail "expected a path embedding on a WAN"
  | Some (_, decoded) ->
      List.iter
        (fun (qe, path) ->
          (* consecutive hops are host edges *)
          let rec hops = function
            | a :: (b :: _ as rest) ->
                if not (Graph.mem_edge host a b || Graph.mem_edge host b a) then
                  Alcotest.fail "decoded hop is not a host edge";
                hops rest
            | _ -> ()
          in
          hops path;
          (* summed delay within the query band *)
          let total =
            let rec sum acc = function
              | a :: (b :: _ as rest) ->
                  let e = List.hd (Graph.edges_between host a b) in
                  sum (acc +. Option.get (Attrs.float "avgDelay" (Graph.edge_attrs host e))) rest
              | _ -> acc
            in
            sum 0.0 path
          in
          let attrs = Graph.edge_attrs (single_edge_query 20.0 200.0) qe in
          ignore attrs;
          if total < 20.0 -. 1e-6 || total > 200.0 +. 1e-6 then
            Alcotest.failf "path delay %g outside band" total)
        decoded

let test_schedule_no_overlap_property () =
  (* Booked placements never share a host during overlapping windows. *)
  let rng = Rng.make 88 in
  let host = ring_host () in
  let s = Schedule.create host in
  let placements = ref [] in
  for i = 0 to 9 do
    let now = float_of_int (10 * i) in
    ignore (Schedule.release_expired s ~now);
    match
      Schedule.earliest s ~now ~duration:(15.0 +. Rng.float rng 20.0)
        ~query:(single_edge_query 5.0 25.0) Expr.avg_delay_within
    with
    | Error _ -> ()
    | Ok p ->
        Schedule.book s p;
        placements := p :: !placements
  done;
  let overlap (a : Schedule.placement) (b : Schedule.placement) =
    a.Schedule.start < b.Schedule.finish && b.Schedule.start < a.Schedule.finish
  in
  let hosts_of p = List.map snd (Mapping.to_list p.Schedule.mapping) in
  let rec pairs = function
    | [] -> ()
    | p :: rest ->
        List.iter
          (fun q ->
            if overlap p q then
              List.iter
                (fun h ->
                  if List.mem h (hosts_of q) then
                    Alcotest.failf "host %d double-booked" h)
                (hosts_of p))
          rest;
        pairs rest
  in
  check Alcotest.bool "some placements made" true (List.length !placements >= 2);
  pairs !placements

(* ------------------------------------------------------------------ *)
(* Symmetry                                                            *)
(* ------------------------------------------------------------------ *)

let test_automorphisms_counts () =
  let module Regular = Netembed_topology.Regular in
  (* Unattributed shapes have the textbook group orders. *)
  let order g = match Symmetry.automorphisms g with Some t -> Symmetry.size t | None -> -1 in
  check Alcotest.int "clique 4 -> 4!" 24 (order (Regular.clique 4));
  check Alcotest.int "ring 5 -> dihedral 10" 10 (order (Regular.ring 5));
  check Alcotest.int "star 5 -> (n-1)!" 24 (order (Regular.star 5));
  check Alcotest.int "line 3 -> 2" 2 (order (Regular.line 3));
  (* Attribute differences break symmetry. *)
  let p = Regular.line 3 in
  Graph.set_node_attrs p 0 (Attrs.of_list [ ("pin", Value.Bool true) ]);
  check Alcotest.int "attributed line -> trivial" 1 (order p)

let test_automorphisms_limit () =
  let module Regular = Netembed_topology.Regular in
  match Symmetry.automorphisms ~limit:100 (Regular.clique 6) with
  | None -> () (* 720 > 100 *)
  | Some _ -> Alcotest.fail "expected the limit to trip"

let test_symmetry_dedupe_clique () =
  let module Regular = Netembed_topology.Regular in
  (* Embed a 3-clique with loose bands: the feasible set is a union of
     S3 orbits; dedupe must divide counts by exactly 6 and keep only
     verified representatives. *)
  let host = ring_host () in
  ignore (Graph.add_edge host 0 2 (delay 12.0));
  let query = Regular.clique ~edge:(band 5.0 25.0) 3 in
  let p = Problem.make ~host ~query Expr.avg_delay_within in
  let all = Engine.find_all Engine.ECF p in
  check Alcotest.bool "multiple of 6" true (List.length all mod 6 = 0);
  match Symmetry.automorphisms query with
  | None -> Alcotest.fail "group should be small"
  | Some g ->
      check Alcotest.int "S3" 6 (Symmetry.size g);
      let reps = Symmetry.dedupe g all in
      check Alcotest.int "collapsed by 6" (List.length all / 6) (List.length reps);
      List.iter (fun m -> check Alcotest.bool "rep valid" true (Verify.is_valid p m)) reps;
      check Alcotest.int "orbit_count agrees" (List.length reps) (Symmetry.orbit_count g all)

let test_canonical_idempotent () =
  let module Regular = Netembed_topology.Regular in
  let query = Regular.ring 4 in
  match Symmetry.automorphisms query with
  | None -> Alcotest.fail "small group"
  | Some g ->
      let m = Mapping.of_array [| 3; 1; 0; 2 |] in
      let c = Symmetry.canonical g m in
      check Alcotest.bool "idempotent" true (Mapping.equal c (Symmetry.canonical g c));
      (* Canonical of any orbit member is the same. *)
      let m' = Mapping.of_array [| 1; 3; 2; 0 |] in
      (* m' = m ∘ rotation?  Just check canonical is minimal-or-equal. *)
      check Alcotest.bool "canonical minimal" true
        (Mapping.to_array c <= Mapping.to_array m
        && Mapping.to_array (Symmetry.canonical g m') <= Mapping.to_array m')

let () =
  Alcotest.run "extensions"
    [
      ( "optimize",
        [
          Alcotest.test_case "best/rank" `Quick test_optimize_best;
          Alcotest.test_case "find_best" `Quick test_optimize_find_best;
          Alcotest.test_case "stock costs" `Quick test_optimize_stock_costs;
        ] );
      ( "path_embed",
        [
          Alcotest.test_case "closure structure" `Quick test_closure_structure;
          Alcotest.test_case "picks cheapest path" `Quick test_closure_picks_cheapest;
          Alcotest.test_case "embed with paths" `Quick test_embed_with_paths;
          Alcotest.test_case "bandwidth bottleneck" `Quick test_closure_bandwidth_bottleneck;
          Alcotest.test_case "rejects" `Quick test_closure_rejects;
          Alcotest.test_case "decoded paths real" `Quick test_path_embed_decoded_paths_real;
        ] );
      ( "schedule",
        [
          Alcotest.test_case "immediate window" `Quick test_schedule_immediate;
          Alcotest.test_case "waits for lease" `Quick test_schedule_waits_for_lease;
          Alcotest.test_case "infeasible" `Quick test_schedule_infeasible;
          Alcotest.test_case "lease boundary" `Quick test_schedule_lease_boundary;
          Alcotest.test_case "zero duration" `Quick test_schedule_zero_duration;
          Alcotest.test_case "gc releases charges" `Quick test_schedule_gc_releases_charges;
          Alcotest.test_case "no double-booking" `Quick test_schedule_no_overlap_property;
        ] );
      ( "symmetry",
        [
          Alcotest.test_case "group orders" `Quick test_automorphisms_counts;
          Alcotest.test_case "limit" `Quick test_automorphisms_limit;
          Alcotest.test_case "dedupe cliques" `Quick test_symmetry_dedupe_clique;
          Alcotest.test_case "canonical" `Quick test_canonical_idempotent;
        ] );
    ]
