(* The concurrent front-end: bounded admission queue semantics (MPMC,
   backpressure, close/drain), the TCP server's pipelining and
   per-connection reply ordering, saturation rejects, graceful stop,
   and the metrics listener's immunity to stalled scrapers. *)

module Frontend = Netembed_frontend.Frontend
module Bounded_queue = Frontend.Bounded_queue
module Wire = Netembed_service.Wire
module Telemetry = Netembed_telemetry.Telemetry

let check = Alcotest.check

let await ?(timeout = 10.0) msg f =
  let t0 = Unix.gettimeofday () in
  let rec go () =
    if f () then ()
    else if Unix.gettimeofday () -. t0 > timeout then
      Alcotest.fail ("await timeout: " ^ msg)
    else begin
      Thread.delay 0.01;
      go ()
    end
  in
  go ()

(* ------------------------------------------------------------------ *)
(* Bounded queue                                                       *)
(* ------------------------------------------------------------------ *)

let test_queue_fill_reject_drain () =
  let q = Bounded_queue.create ~capacity:2 in
  check Alcotest.int "capacity" 2 (Bounded_queue.capacity q);
  check Alcotest.bool "push 1" true (Bounded_queue.try_push q 1);
  check Alcotest.bool "push 2" true (Bounded_queue.try_push q 2);
  check Alcotest.bool "push onto full queue rejected" false
    (Bounded_queue.try_push q 3);
  check Alcotest.int "length" 2 (Bounded_queue.length q);
  check (Alcotest.option Alcotest.int) "pop FIFO" (Some 1) (Bounded_queue.pop q);
  check Alcotest.bool "room again" true (Bounded_queue.try_push q 4);
  Bounded_queue.close q;
  check Alcotest.bool "push after close rejected" false
    (Bounded_queue.try_push q 5);
  (* Elements already queued are still delivered after close... *)
  check (Alcotest.option Alcotest.int) "drain 2" (Some 2) (Bounded_queue.pop q);
  check (Alcotest.option Alcotest.int) "drain 4" (Some 4) (Bounded_queue.pop q);
  (* ...then pop reports exhaustion instead of blocking. *)
  check (Alcotest.option Alcotest.int) "closed and dry" None (Bounded_queue.pop q);
  (match Bounded_queue.create ~capacity:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "capacity 0 should be rejected")

(* Multi-domain producers and consumers: every pushed element is popped
   exactly once, and closing wakes every blocked consumer. *)
let test_queue_mpmc () =
  let q = Bounded_queue.create ~capacity:8 in
  let producers = 2 and consumers = 2 and per_producer = 500 in
  let consumed = Atomic.make 0 in
  let sum = Atomic.make 0 in
  let consumer () =
    let rec loop () =
      match Bounded_queue.pop q with
      | None -> ()
      | Some v ->
          Atomic.incr consumed;
          ignore (Atomic.fetch_and_add sum v);
          loop ()
    in
    loop ()
  in
  let producer base () =
    for i = 1 to per_producer do
      let v = base + i in
      while not (Bounded_queue.try_push q v) do
        Domain.cpu_relax ()
      done
    done
  in
  let cs = Array.init consumers (fun _ -> Domain.spawn consumer) in
  let ps =
    Array.init producers (fun p -> Domain.spawn (producer (p * per_producer)))
  in
  Array.iter Domain.join ps;
  Bounded_queue.close q;
  Array.iter Domain.join cs;
  let n = producers * per_producer in
  check Alcotest.int "every element consumed once" n (Atomic.get consumed);
  (* sum over p in 0..producers-1, i in 1..per: p*per + i *)
  let expected = Stdlib.( + ) (per_producer * (per_producer + 1) / 2 * producers)
      (per_producer * per_producer * (producers * (producers - 1) / 2))
  in
  check Alcotest.int "no element duplicated or lost" expected (Atomic.get sum)

(* ------------------------------------------------------------------ *)
(* TCP front-end helpers                                               *)
(* ------------------------------------------------------------------ *)

let write_all fd s =
  let len = String.length s in
  let pos = ref 0 in
  while !pos < len do
    pos := !pos + Unix.write_substring fd s !pos (len - !pos)
  done

let connect port =
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  fd

let send_frame fd body = write_all fd (body ^ "\n.\n")

(* One reply frame: the lines before the "." terminator. *)
let read_reply ic =
  let rec go acc =
    match input_line ic with
    | "." -> List.rev acc
    | line -> go (line :: acc)
    | exception End_of_file -> List.rev acc
  in
  go []

let config ~workers ~queue_capacity =
  {
    Frontend.workers;
    queue_capacity;
    idle_timeout = 10.0;
    max_frame_bytes = 4096;
    drain_timeout = 3.0;
  }

(* ------------------------------------------------------------------ *)
(* Pipelining and reply order                                          *)
(* ------------------------------------------------------------------ *)

let test_pipelining_preserves_order () =
  let registry = Telemetry.Registry.create () in
  (* Timestamps of handler entry/exit prove two requests were in
     flight at once. *)
  let log = ref [] in
  let log_lock = Mutex.create () in
  let stamp tag =
    Mutex.lock log_lock;
    log := (tag, Unix.gettimeofday ()) :: !log;
    Mutex.unlock log_lock
  in
  let handle ~queue_wait:_ frame =
    let tag = String.trim frame in
    stamp ("enter " ^ tag);
    if tag = "SLOW" then Thread.delay 0.3;
    stamp ("exit " ^ tag);
    Printf.sprintf "OK tag=%s\n.\n" tag
  in
  let reject ~queue_depth:_ ~queue_capacity:_ = Alcotest.fail "unexpected reject" in
  let server =
    Frontend.start
      ~config:(config ~workers:2 ~queue_capacity:8)
      ~registry ~handle ~reject ~port:0 ()
  in
  Fun.protect ~finally:(fun () -> Frontend.stop server) @@ fun () ->
  let fd = connect (Frontend.port server) in
  let ic = Unix.in_channel_of_descr fd in
  (* Both frames go out before any reply is read: pipelining. *)
  send_frame fd "SLOW";
  send_frame fd "FAST";
  let r1 = read_reply ic in
  let r2 = read_reply ic in
  (* The slow request's reply still comes first — replies leave in
     request order even when completion order inverts. *)
  check (Alcotest.list Alcotest.string) "first reply is SLOW" [ "OK tag=SLOW" ] r1;
  check (Alcotest.list Alcotest.string) "second reply is FAST" [ "OK tag=FAST" ] r2;
  let at tag = List.assoc tag !log in
  check Alcotest.bool "FAST ran while SLOW was still in flight" true
    (at "enter FAST" < at "exit SLOW");
  Unix.close fd

(* ------------------------------------------------------------------ *)
(* Backpressure                                                        *)
(* ------------------------------------------------------------------ *)

let test_backpressure_reject () =
  let registry = Telemetry.Registry.create () in
  let gate = Atomic.make false in
  let entered = Atomic.make 0 in
  let rejects = Atomic.make 0 in
  let handle ~queue_wait:_ frame =
    Atomic.incr entered;
    while not (Atomic.get gate) do
      Thread.delay 0.005
    done;
    Printf.sprintf "OK tag=%s\n.\n" (String.trim frame)
  in
  let reject ~queue_depth ~queue_capacity =
    Atomic.incr rejects;
    Wire.encode_error
      (Printf.sprintf "server saturated: admission queue full (%d/%d); retry"
         queue_depth queue_capacity)
  in
  (* One worker, a one-slot queue: deterministic saturation. *)
  let server =
    Frontend.start
      ~config:(config ~workers:1 ~queue_capacity:1)
      ~registry ~handle ~reject ~port:0 ()
  in
  Fun.protect ~finally:(fun () -> Frontend.stop server) @@ fun () ->
  let depth () =
    Telemetry.Gauge.value
      (Telemetry.Registry.gauge registry "netembed_admission_queue_depth")
  in
  let fd = connect (Frontend.port server) in
  let ic = Unix.in_channel_of_descr fd in
  (* F1 occupies the only worker... *)
  send_frame fd "F1";
  await "worker picked up F1" (fun () -> Atomic.get entered = 1);
  (* ...F2 fills the only queue slot... *)
  send_frame fd "F2";
  await "F2 queued" (fun () -> depth () = 1.0);
  (* ...so F3 bounces off the full queue immediately. *)
  send_frame fd "F3";
  await "F3 rejected" (fun () -> Atomic.get rejects = 1);
  (* F4 is admitted once the gate opens and the pipeline drains. *)
  send_frame fd "F4";
  Atomic.set gate true;
  let replies = List.init 4 (fun _ -> read_reply ic) in
  (match replies with
  | [ [ ok1 ]; [ ok2 ]; [ err ]; [ ok4 ] ] ->
      check Alcotest.string "F1 served" "OK tag=F1" ok1;
      check Alcotest.string "F2 served" "OK tag=F2" ok2;
      check Alcotest.bool "F3's reply is the backpressure error" true
        (String.length err >= 3
        && String.sub err 0 3 = "ERR"
        &&
        let sub = "admission queue full" in
        let n = String.length err and m = String.length sub in
        let rec has i = i + m <= n && (String.sub err i m = sub || has (i + 1)) in
        has 0);
      check Alcotest.string "F4 served after the queue drained" "OK tag=F4" ok4
  | _ -> Alcotest.fail "expected exactly four replies");
  check Alcotest.int "exactly one reject" 1 (Atomic.get rejects);
  Unix.close fd

(* ------------------------------------------------------------------ *)
(* Queue-wait measurement                                              *)
(* ------------------------------------------------------------------ *)

(* One worker, a one-slot queue, and a gated handler: the second frame
   must sit in the queue for the whole gated window, and the wait the
   worker hands to [handle] must cover it. *)
let test_queue_wait_measured () =
  let registry = Telemetry.Registry.create () in
  let gate = Atomic.make false in
  let waits_lock = Mutex.create () in
  let waits = ref [] in
  let handle ~queue_wait frame =
    let tag = String.trim frame in
    Mutex.lock waits_lock;
    waits := (tag, queue_wait) :: !waits;
    Mutex.unlock waits_lock;
    while not (Atomic.get gate) do
      Thread.delay 0.005
    done;
    Printf.sprintf "OK tag=%s\n.\n" tag
  in
  let reject ~queue_depth:_ ~queue_capacity:_ = Alcotest.fail "unexpected reject" in
  let server =
    Frontend.start
      ~config:(config ~workers:1 ~queue_capacity:1)
      ~registry ~handle ~reject ~port:0 ()
  in
  Fun.protect ~finally:(fun () -> Frontend.stop server) @@ fun () ->
  let seen () =
    Mutex.lock waits_lock;
    let n = List.length !waits in
    Mutex.unlock waits_lock;
    n
  in
  let depth () =
    Telemetry.Gauge.value
      (Telemetry.Registry.gauge registry "netembed_admission_queue_depth")
  in
  let fd = connect (Frontend.port server) in
  let ic = Unix.in_channel_of_descr fd in
  (* F1 goes straight to the only worker; F2 fills the one queue slot
     and waits there while the gate is shut. *)
  send_frame fd "F1";
  await "F1 entered the handler" (fun () -> seen () = 1);
  send_frame fd "F2";
  await "F2 queued" (fun () -> depth () = 1.0);
  Thread.delay 0.25;
  Atomic.set gate true;
  ignore (read_reply ic);
  ignore (read_reply ic);
  let wait tag =
    Mutex.lock waits_lock;
    let w = List.assoc tag !waits in
    Mutex.unlock waits_lock;
    w
  in
  check Alcotest.bool "F1 barely waited" true (wait "F1" < 0.2);
  check Alcotest.bool "F2's queue wait covers the gated window" true
    (wait "F2" >= 0.2);
  Unix.close fd

(* ------------------------------------------------------------------ *)
(* Graceful stop and frame bounds                                      *)
(* ------------------------------------------------------------------ *)

let test_graceful_stop_drains () =
  let registry = Telemetry.Registry.create () in
  let entered = Atomic.make 0 in
  let handle ~queue_wait:_ frame =
    Atomic.incr entered;
    Thread.delay 0.3;
    Printf.sprintf "OK tag=%s\n.\n" (String.trim frame)
  in
  let reject ~queue_depth:_ ~queue_capacity:_ = Alcotest.fail "unexpected reject" in
  let server =
    Frontend.start
      ~config:(config ~workers:1 ~queue_capacity:4)
      ~registry ~handle ~reject ~port:0 ()
  in
  let fd = connect (Frontend.port server) in
  let ic = Unix.in_channel_of_descr fd in
  send_frame fd "WORK";
  await "request in flight" (fun () -> Atomic.get entered = 1);
  (* Stop while the request is mid-handler: the drain must finish it
     and deliver the reply before the socket closes. *)
  let stopper = Thread.create (fun () -> Frontend.stop server) () in
  let reply = read_reply ic in
  check (Alcotest.list Alcotest.string) "in-flight reply delivered"
    [ "OK tag=WORK" ] reply;
  Thread.join stopper;
  (* The listener is really gone. *)
  (match connect (Frontend.port server) with
  | fd2 ->
      (* A connect may momentarily succeed out of the dead listener's
         backlog; it must at least be unserved (EOF). *)
      let ic2 = Unix.in_channel_of_descr fd2 in
      (try Unix.setsockopt_float fd2 Unix.SO_RCVTIMEO 1.0
       with Unix.Unix_error _ -> ());
      send_frame fd2 "PING";
      (match input_line ic2 with
      | exception _ -> ()
      | _ -> Alcotest.fail "stopped server answered a new connection");
      Unix.close fd2
  | exception Unix.Unix_error _ -> ());
  Unix.close fd

let test_oversized_frame_rejected_cleanly () =
  let registry = Telemetry.Registry.create () in
  let handle ~queue_wait:_ frame =
    Printf.sprintf "OK tag=%s\n.\n" (String.trim frame)
  in
  let reject ~queue_depth:_ ~queue_capacity:_ = Alcotest.fail "unexpected reject" in
  let server =
    Frontend.start
      ~config:(config ~workers:1 ~queue_capacity:4)
      ~registry ~handle ~reject ~port:0 ()
  in
  Fun.protect ~finally:(fun () -> Frontend.stop server) @@ fun () ->
  let fd = connect (Frontend.port server) in
  let ic = Unix.in_channel_of_descr fd in
  (* Body far beyond the 4096-byte config bound, then a valid frame on
     the same connection: the reader must reject the first with a clean
     wire error, resynchronize at the terminator, and serve the
     second. *)
  send_frame fd (String.make 10_000 'x');
  send_frame fd "AFTER";
  (match read_reply ic with
  | [ err ] ->
      check Alcotest.string "bounded-frame error" ("ERR " ^ Wire.frame_too_large ~limit:4096) err
  | other ->
      Alcotest.failf "expected one ERR line, got %d lines" (List.length other));
  check (Alcotest.list Alcotest.string) "stream resynchronized"
    [ "OK tag=AFTER" ] (read_reply ic);
  Unix.close fd

(* ------------------------------------------------------------------ *)
(* Metrics HTTP listener                                               *)
(* ------------------------------------------------------------------ *)

let test_healthz_survives_stalled_scraper () =
  let registry = Telemetry.Registry.create () in
  ignore (Telemetry.Registry.counter registry "netembed_requests_total");
  let port = Frontend.Http.start ~timeout:0.5 ~registry ~port:0 () in
  (* A scraper that connects and then goes silent... *)
  let stalled = connect port in
  Thread.delay 0.05;
  (* ...must not block the next scrape. *)
  let fd = connect port in
  write_all fd "GET /healthz HTTP/1.1\r\nHost: localhost\r\n\r\n";
  let ic = Unix.in_channel_of_descr fd in
  (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO 5.0
   with Unix.Unix_error _ -> ());
  let status = input_line ic in
  check Alcotest.bool "healthz answers behind a stalled scraper" true
    (String.length status >= 15 && String.sub status 0 15 = "HTTP/1.1 200 OK");
  let fd2 = connect port in
  write_all fd2 "GET /metrics HTTP/1.1\r\n\r\n";
  let ic2 = Unix.in_channel_of_descr fd2 in
  let buf = Buffer.create 256 in
  (try
     while true do
       Buffer.add_channel buf ic2 1
     done
   with End_of_file | Sys_error _ -> ());
  check Alcotest.bool "metrics exposition flows" true (Buffer.length buf > 0);
  Unix.close fd;
  Unix.close fd2;
  Unix.close stalled

(* /healthz and /readyz answer through the caller's probe callbacks:
   200 while ok, 503 with the callback's body once flipped, with
   /metrics unaffected. *)
let test_probe_endpoints_follow_callbacks () =
  let registry = Telemetry.Registry.create () in
  ignore (Telemetry.Registry.counter registry "netembed_requests_total");
  let ready = Atomic.make true in
  let live = Atomic.make true in
  let port =
    Frontend.Http.start ~timeout:2.0 ~registry
      ~healthz:(fun () ->
        if Atomic.get live then (true, "ok") else (false, "draining"))
      ~readyz:(fun () ->
        if Atomic.get ready then (true, "healthy") else (false, "saturated"))
      ~port:0 ()
  in
  let status_of path =
    let fd = connect port in
    write_all fd (Printf.sprintf "GET %s HTTP/1.1\r\n\r\n" path);
    let ic = Unix.in_channel_of_descr fd in
    (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO 5.0
     with Unix.Unix_error _ -> ());
    let status = input_line ic in
    Unix.close fd;
    if String.length status >= 12 then String.sub status 9 3 else status
  in
  check Alcotest.string "ready" "200" (status_of "/readyz");
  check Alcotest.string "live" "200" (status_of "/healthz");
  Atomic.set ready false;
  check Alcotest.string "not ready -> 503" "503" (status_of "/readyz");
  check Alcotest.string "liveness unaffected by readiness" "200"
    (status_of "/healthz");
  Atomic.set live false;
  check Alcotest.string "draining -> healthz 503" "503" (status_of "/healthz");
  check Alcotest.string "metrics still served" "200" (status_of "/metrics")

let () =
  Alcotest.run "frontend"
    [
      ( "bounded queue",
        [
          Alcotest.test_case "fill, reject, close, drain" `Quick
            test_queue_fill_reject_drain;
          Alcotest.test_case "MPMC across domains" `Quick test_queue_mpmc;
        ] );
      ( "tcp server",
        [
          Alcotest.test_case "pipelining preserves reply order" `Quick
            test_pipelining_preserves_order;
          Alcotest.test_case "backpressure reject at saturation" `Quick
            test_backpressure_reject;
          Alcotest.test_case "queue wait measured under a gated one-slot queue"
            `Quick test_queue_wait_measured;
          Alcotest.test_case "graceful stop drains in-flight work" `Quick
            test_graceful_stop_drains;
          Alcotest.test_case "oversized frame rejected, stream resyncs" `Quick
            test_oversized_frame_rejected_cleanly;
        ] );
      ( "metrics http",
        [
          Alcotest.test_case "healthz behind a stalled scraper" `Quick
            test_healthz_survives_stalled_scraper;
          Alcotest.test_case "probe endpoints follow their callbacks" `Quick
            test_probe_endpoints_follow_callbacks;
        ] );
    ]
