module Graph = Netembed_graph.Graph
module Attrs = Netembed_attr.Attrs
module Value = Netembed_attr.Value
module Ledger = Netembed_ledger.Ledger
module Mapping = Netembed_core.Mapping
module Problem = Netembed_core.Problem
module Engine = Netembed_core.Engine
module Expr = Netembed_expr.Expr

let check = Alcotest.check
let exact = Alcotest.float 0.0

(* 4-node ring, every node 1000 MHz / 1024 MB, every link 100 Mbps. *)
let host () =
  let g = Graph.create ~name:"cap-ring" () in
  let node =
    Attrs.of_list [ ("cpuMhz", Value.Int 1000); ("memMB", Value.Int 1024) ]
  in
  let edge =
    Attrs.of_list [ ("avgDelay", Value.Float 10.0); ("bandwidth", Value.Float 100.0) ]
  in
  let v = Array.init 4 (fun _ -> Graph.add_node g node) in
  for i = 0 to 3 do
    ignore (Graph.add_edge g v.(i) v.((i + 1) mod 4) edge)
  done;
  g

let query ~cpu ~bw =
  let g = Graph.create ~name:"q" () in
  let node = Attrs.of_list [ ("cpuMhz", Value.Float cpu) ] in
  let q0 = Graph.add_node g node and q1 = Graph.add_node g node in
  ignore
    (Graph.add_edge g q0 q1
       (Attrs.of_list
          [
            ("minDelay", Value.Float 5.0);
            ("maxDelay", Value.Float 15.0);
            ("bandwidth", Value.Float bw);
          ]));
  g

let line target resource amount = { Ledger.target; resource; amount }

let assert_pristine ledger =
  let g = Ledger.graph ledger in
  for v = 0 to Graph.node_count g - 1 do
    check exact "node cpu residual" 1000.0 (Ledger.residual ledger (Ledger.Node v) "cpuMhz");
    check exact "node mem residual" 1024.0 (Ledger.residual ledger (Ledger.Node v) "memMB")
  done;
  for e = 0 to Graph.edge_count g - 1 do
    check exact "edge bw residual" 100.0 (Ledger.residual ledger (Ledger.Edge e) "bandwidth")
  done;
  check Alcotest.int "no allocations" 0 (Ledger.outstanding ledger)

(* ------------------------------------------------------------------ *)

let test_tracking () =
  let ledger = Ledger.of_graph (host ()) in
  check Alcotest.(list string) "node resources" [ "cpuMhz"; "memMB" ]
    (Ledger.node_resources ledger);
  check Alcotest.(list string) "edge resources" [ "bandwidth" ]
    (Ledger.edge_resources ledger);
  check exact "capacity" 1000.0 (Ledger.capacity ledger (Ledger.Node 0) "cpuMhz");
  check exact "untracked resource" 0.0 (Ledger.capacity ledger (Ledger.Node 0) "gpu");
  (* A host with no capacity attributes yields an empty ledger that
     admits everything. *)
  let bare = Graph.create () in
  ignore (Graph.add_node bare Attrs.empty);
  ignore (Graph.add_node bare Attrs.empty);
  ignore (Graph.add_edge bare 0 1 Attrs.empty);
  let empty = Ledger.of_graph bare in
  check Alcotest.(list string) "nothing tracked" [] (Ledger.node_resources empty);
  match Ledger.admissible empty ~query:(query ~cpu:1e9 ~bw:1e9) with
  | Ok () -> ()
  | Error f -> Alcotest.fail (Ledger.failure_to_string f)

(* Commit/release round-trips restore residuals exactly — bit-for-bit
   float equality, even under fractional churn that would drift with
   naive add/subtract accounting. *)
let test_roundtrip_exact () =
  let ledger = Ledger.of_graph (host ()) in
  (* Interleaved commits and releases of awkward fractions. *)
  let commit c =
    match Ledger.try_commit ledger c with
    | Ok id -> id
    | Error f -> Alcotest.fail (Ledger.failure_to_string f)
  in
  let ids = ref [] in
  for i = 0 to 99 do
    let a = 0.1 +. (0.7 *. float_of_int (i mod 13)) in
    let id =
      commit
        [
          line (Ledger.Node (i mod 4)) "cpuMhz" a;
          line (Ledger.Node ((i + 1) mod 4)) "memMB" (a /. 3.0);
          line (Ledger.Edge (i mod 4)) "bandwidth" (a /. 7.0);
        ]
    in
    ids := id :: !ids;
    (* Every third step, release a pending allocation out of order. *)
    if i mod 3 = 2 then begin
      match !ids with
      | _ :: keep :: rest when i mod 2 = 0 ->
          check Alcotest.bool "release" true (Ledger.release ledger keep);
          ids := List.hd !ids :: rest
      | id :: rest ->
          check Alcotest.bool "release" true (Ledger.release ledger id);
          ids := rest
      | [] -> ()
    end
  done;
  List.iter (fun id -> check Alcotest.bool "drain" true (Ledger.release ledger id)) !ids;
  assert_pristine ledger;
  (* Double release is a no-op. *)
  check Alcotest.bool "unknown id" false (Ledger.release ledger 1)

let test_atomicity () =
  let ledger = Ledger.of_graph (host ()) in
  (* First line fits, second over-commits: nothing may be debited. *)
  (match
     Ledger.try_commit ledger
       [ line (Ledger.Node 0) "cpuMhz" 600.0; line (Ledger.Node 1) "cpuMhz" 1200.0 ]
   with
  | Ok _ -> Alcotest.fail "expected over-commit"
  | Error f ->
      check Alcotest.string "names the resource" "cpuMhz" f.Ledger.resource;
      check Alcotest.bool "names the element" true (f.Ledger.target = Some (Ledger.Node 1));
      check exact "requested" 1200.0 f.Ledger.requested;
      check exact "available" 1000.0 f.Ledger.available);
  assert_pristine ledger;
  (* Lines against the same (target, resource) aggregate before the
     check: two individually-fitting halves that jointly exceed the
     capacity are rejected. *)
  (match
     Ledger.try_commit ledger
       [ line (Ledger.Edge 0) "bandwidth" 60.0; line (Ledger.Edge 0) "bandwidth" 60.0 ]
   with
  | Ok _ -> Alcotest.fail "expected aggregated over-commit"
  | Error f ->
      check Alcotest.string "resource" "bandwidth" f.Ledger.resource;
      check exact "joint demand" 120.0 f.Ledger.requested);
  assert_pristine ledger;
  (* Negative amounts are a programming error, not a rejection. *)
  match Ledger.try_commit ledger [ line (Ledger.Node 0) "cpuMhz" (-1.0) ] with
  | exception Invalid_argument _ -> ()
  | Ok _ | Error _ -> Alcotest.fail "expected Invalid_argument"

let test_multi_tenant () =
  let ledger = Ledger.of_graph (host ()) in
  let tenant () = [ line (Ledger.Node 0) "cpuMhz" 400.0 ] in
  let id1 = Result.get_ok (Ledger.try_commit ledger (tenant ())) in
  let _id2 = Result.get_ok (Ledger.try_commit ledger (tenant ())) in
  check exact "co-located" 800.0 (Ledger.used ledger (Ledger.Node 0) "cpuMhz");
  (* Third tenant does not fit; the failure names resource and element
     and reports what is left. *)
  (match Ledger.try_commit ledger (tenant ()) with
  | Ok _ -> Alcotest.fail "expected exhaustion"
  | Error f ->
      check Alcotest.string "resource" "cpuMhz" f.Ledger.resource;
      check Alcotest.bool "element" true (f.Ledger.target = Some (Ledger.Node 0));
      check exact "available" 200.0 f.Ledger.available);
  (* Departure of tenant 1 makes room again. *)
  check Alcotest.bool "release" true (Ledger.release ledger id1);
  match Ledger.try_commit ledger (tenant ()) with
  | Ok _ -> ()
  | Error f -> Alcotest.fail (Ledger.failure_to_string f)

(* Searching against the residual graph and charging each returned
   embedding must never over-commit: the constraints see residual
   capacities, so whatever the engine returns fits by construction. *)
let test_residual_search_never_overcommits () =
  let base = host () in
  let ledger = Ledger.of_graph base in
  let q = query ~cpu:400.0 ~bw:60.0 in
  let edge_constraint =
    Expr.parse_exn
      "rEdge.avgDelay >= vEdge.minDelay && rEdge.avgDelay <= vEdge.maxDelay \
       && rEdge.bandwidth >= vEdge.bandwidth"
  in
  let node_constraint = Expr.parse_exn "rSource.cpuMhz >= vSource.cpuMhz" in
  let tenants = ref 0 in
  let exhausted = ref false in
  while not !exhausted do
    let residual = Ledger.residual_graph ledger in
    let problem = Problem.make ~node_constraint ~host:residual ~query:q edge_constraint in
    match Engine.find_first Engine.ECF problem with
    | None -> exhausted := true
    | Some mapping -> (
        match Ledger.charge_of_mapping ledger ~query:q mapping with
        | Error m -> Alcotest.fail m
        | Ok charge -> (
            match Ledger.try_commit ledger charge with
            | Ok _ -> incr tenants
            | Error f ->
                Alcotest.failf "residual search over-committed: %s"
                  (Ledger.failure_to_string f)))
  done;
  (* 4 edges x 100 Mbps at 60 per tenant: one tenant per edge; node
     capacity admits two 400 MHz tenants per node. *)
  check Alcotest.int "tenants placed" 4 !tenants;
  List.iter
    (fun (_, _, used, cap) ->
      if used > cap then Alcotest.failf "utilization above capacity: %g > %g" used cap)
    (Ledger.utilization ledger)

let test_charge_of_mapping () =
  let ledger = Ledger.of_graph (host ()) in
  let q = query ~cpu:400.0 ~bw:60.0 in
  (* Adjacent hosts: node and edge lines. *)
  (match Ledger.charge_of_mapping ledger ~query:q (Mapping.of_array [| 0; 1 |]) with
  | Error m -> Alcotest.fail m
  | Ok charge -> check Alcotest.int "two node lines + one edge line" 3 (List.length charge));
  (* Hosts 0 and 2 share no link in the ring: a bandwidth-demanding
     query edge cannot be accounted. *)
  match Ledger.charge_of_mapping ledger ~query:q (Mapping.of_array [| 0; 2 |]) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected unaccountable path mapping"

let test_admission () =
  let ledger = Ledger.of_graph (host ()) in
  (* 2 x 2500 = 5000 > 4000 total MHz. *)
  (match Ledger.admissible ledger ~query:(query ~cpu:2500.0 ~bw:1.0) with
  | Ok () -> Alcotest.fail "expected aggregate rejection"
  | Error f ->
      check Alcotest.string "resource" "cpuMhz" f.Ledger.resource;
      check Alcotest.bool "aggregate (no element)" true (f.Ledger.target = None);
      check exact "requested" 5000.0 f.Ledger.requested;
      check exact "available" 4000.0 f.Ledger.available);
  (* Feasible in aggregate. *)
  (match Ledger.admissible ledger ~query:(query ~cpu:400.0 ~bw:60.0) with
  | Ok () -> ()
  | Error f -> Alcotest.fail (Ledger.failure_to_string f));
  (* Usage shrinks what admission sees. *)
  ignore (Result.get_ok (Ledger.try_commit ledger [ line (Ledger.Node 0) "cpuMhz" 1000.0;
                                                    line (Ledger.Node 1) "cpuMhz" 1000.0;
                                                    line (Ledger.Node 2) "cpuMhz" 1000.0;
                                                    line (Ledger.Node 3) "cpuMhz" 300.0 ]));
  match Ledger.admissible ledger ~query:(query ~cpu:400.0 ~bw:1.0) with
  | Ok () -> Alcotest.fail "expected admission to see residuals"
  | Error f -> check exact "residual total" 700.0 f.Ledger.available

let test_lock () =
  let ledger = Ledger.of_graph (host ()) in
  let id = Ledger.lock ledger 0 in
  check exact "cpu gone" 0.0 (Ledger.residual ledger (Ledger.Node 0) "cpuMhz");
  check exact "mem gone" 0.0 (Ledger.residual ledger (Ledger.Node 0) "memMB");
  (* Nothing fractional fits on a locked node. *)
  (match Ledger.try_commit ledger [ line (Ledger.Node 0) "cpuMhz" 1.0 ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "lock must exhaust the node");
  (* Other nodes unaffected. *)
  check exact "neighbours free" 1000.0 (Ledger.residual ledger (Ledger.Node 1) "cpuMhz");
  check Alcotest.bool "unlock" true (Ledger.release ledger id);
  assert_pristine ledger

let test_sync_and_credit () =
  let g = host () in
  let a = Ledger.of_graph g in
  let charge =
    [
      line (Ledger.Node 0) "cpuMhz" 400.0;
      line (Ledger.Node 1) "cpuMhz" 400.0;
      line (Ledger.Edge 0) "bandwidth" 60.0;
    ]
  in
  ignore (Result.get_ok (Ledger.try_commit a charge));
  (* A fresh ledger rebuilt from the residual snapshot sees the same
     usage, held as one external allocation. *)
  let b = Ledger.of_graph g in
  Ledger.sync_residual b (Ledger.residual_graph a);
  check Alcotest.int "one external allocation" 1 (Ledger.outstanding b);
  check exact "usage recovered" 400.0 (Ledger.used b (Ledger.Node 0) "cpuMhz");
  check exact "edge usage recovered" 60.0 (Ledger.used b (Ledger.Edge 0) "bandwidth");
  (* Crediting the original charge back empties the ledger exactly. *)
  (match Ledger.credit b charge with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  check exact "restored" 1000.0 (Ledger.residual b (Ledger.Node 0) "cpuMhz");
  check exact "edge restored" 100.0 (Ledger.residual b (Ledger.Edge 0) "bandwidth");
  (* Crediting again exceeds what is recorded. *)
  (match Ledger.credit b charge with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "expected over-credit failure");
  (* Without any synced usage there is nothing to credit. *)
  let c = Ledger.of_graph g in
  match Ledger.credit c charge with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "expected no-external-usage failure"

let test_migrate () =
  let ledger = Ledger.of_graph (host ()) in
  let id = Result.get_ok (Ledger.try_commit ledger [ line (Ledger.Node 0) "cpuMhz" 400.0 ]) in
  (* Success: the charge moves atomically and the old id dies. *)
  let id' =
    match Ledger.migrate ledger id [ line (Ledger.Node 1) "cpuMhz" 400.0 ] with
    | Ok id' -> id'
    | Error f -> Alcotest.fail (Ledger.failure_to_string f)
  in
  check exact "source vacated" 1000.0 (Ledger.residual ledger (Ledger.Node 0) "cpuMhz");
  check exact "target charged" 600.0 (Ledger.residual ledger (Ledger.Node 1) "cpuMhz");
  check Alcotest.int "still one allocation" 1 (Ledger.outstanding ledger);
  check Alcotest.bool "old id dead" true (Ledger.allocation_charge ledger id = None);
  check Alcotest.bool "release new id" true (Ledger.release ledger id');
  assert_pristine ledger;
  (* Unknown ids are a programming error. *)
  match Ledger.migrate ledger 999 [] with
  | exception Invalid_argument _ -> ()
  | Ok _ | Error _ -> Alcotest.fail "expected Invalid_argument"

(* The release-then-commit order lets a move land on capacity the
   allocation itself vacates. *)
let test_migrate_reuses_own_capacity () =
  let ledger = Ledger.of_graph (host ()) in
  let victim = Result.get_ok (Ledger.try_commit ledger [ line (Ledger.Node 0) "cpuMhz" 800.0 ]) in
  (* 900 > 200 residual, but fits once the victim's own 800 is back. *)
  (match Ledger.migrate ledger victim [ line (Ledger.Node 0) "cpuMhz" 900.0 ] with
  | Ok _ -> ()
  | Error f -> Alcotest.fail (Ledger.failure_to_string f));
  check exact "re-homed in place" 100.0 (Ledger.residual ledger (Ledger.Node 0) "cpuMhz")

let test_migrate_rollback () =
  let ledger = Ledger.of_graph (host ()) in
  let before = [ line (Ledger.Node 0) "cpuMhz" 400.0; line (Ledger.Edge 0) "bandwidth" 30.0 ] in
  let id = Result.get_ok (Ledger.try_commit ledger before) in
  let bystander = Result.get_ok (Ledger.try_commit ledger [ line (Ledger.Node 2) "cpuMhz" 250.0 ]) in
  (* The new charge over-commits: the failure must leave the victim
     intact under its original id with its original charge, bit-exact. *)
  (match Ledger.migrate ledger id [ line (Ledger.Node 1) "cpuMhz" 1200.0 ] with
  | Ok _ -> Alcotest.fail "expected over-commit"
  | Error f -> check Alcotest.string "names the resource" "cpuMhz" f.Ledger.resource);
  check Alcotest.int "both allocations live" 2 (Ledger.outstanding ledger);
  (match Ledger.allocation_charge ledger id with
  | Some c -> check Alcotest.bool "charge preserved" true (c = before)
  | None -> Alcotest.fail "victim lost its allocation");
  check exact "victim still charged" 600.0 (Ledger.residual ledger (Ledger.Node 0) "cpuMhz");
  check exact "victim bw still charged" 70.0 (Ledger.residual ledger (Ledger.Edge 0) "bandwidth");
  check exact "target untouched" 1000.0 (Ledger.residual ledger (Ledger.Node 1) "cpuMhz");
  check Alcotest.bool "release victim" true (Ledger.release ledger id);
  check Alcotest.bool "release bystander" true (Ledger.release ledger bystander);
  assert_pristine ledger

let test_fragmentation () =
  let ledger = Ledger.of_graph (host ()) in
  (* Idle: all free capacity sits on untouched elements. *)
  check exact "idle" 0.0 (Ledger.fragmentation_index ledger);
  (* A fully-consumed node leaves no partial residue either. *)
  let full = Result.get_ok (Ledger.try_commit ledger [ line (Ledger.Node 0) "cpuMhz" 1000.0 ]) in
  let cpu_frag () =
    match List.find (fun (r, k, _) -> r = "cpuMhz" && k = `Node) (Ledger.fragmentation ledger) with
    | _, _, f -> f
  in
  check exact "fully used = consolidated" 0.0 (cpu_frag ());
  (* A half-used node scatters its free half: 500 of the 3500 free MHz
     now sits on a partially-used element. *)
  let partial = Result.get_ok (Ledger.try_commit ledger [ line (Ledger.Node 1) "cpuMhz" 500.0 ]) in
  check (Alcotest.float 1e-9) "dispersed share" (500.0 /. 2500.0) (cpu_frag ());
  (* The index averages over all tracked pools (memMB and bandwidth are
     untouched, so they contribute 0). *)
  check (Alcotest.float 1e-9) "index is pool mean" (500.0 /. 2500.0 /. 3.0)
    (Ledger.fragmentation_index ledger);
  ignore (Ledger.release ledger full);
  ignore (Ledger.release ledger partial);
  check exact "restored" 0.0 (Ledger.fragmentation_index ledger)

(* Property: any sequence of fitting commits, fully released in an
   arbitrary order, restores every residual bit-for-bit. *)
let prop_release_restores =
  QCheck.Test.make ~name:"full release restores residuals exactly" ~count:100
    QCheck.(
      list_of_size (QCheck.Gen.int_range 1 30)
        (pair (int_bound 3) (map (fun k -> float_of_int k /. 97.0) (int_bound 2500))))
    (fun ops ->
      let ledger = Ledger.of_graph (host ()) in
      let ids =
        List.filter_map
          (fun (v, amount) ->
            let amount = Float.abs amount in
            match
              Ledger.try_commit ledger
                [
                  line (Ledger.Node v) "cpuMhz" amount;
                  line (Ledger.Edge v) "bandwidth" (amount /. 3.0);
                ]
            with
            | Ok id -> Some id
            | Error _ -> None)
          ops
      in
      (* Release in reversed-interleaved order. *)
      let order =
        List.mapi (fun i id -> (i, id)) ids
        |> List.sort (fun (i, _) (j, _) -> compare (i mod 2, j) (j mod 2, i))
        |> List.map snd
      in
      List.iter (fun id -> ignore (Ledger.release ledger id)) order;
      List.for_all
        (fun v ->
          Ledger.residual ledger (Ledger.Node v) "cpuMhz" = 1000.0
          && Ledger.residual ledger (Ledger.Edge v) "bandwidth" = 100.0)
        [ 0; 1; 2; 3 ])

(* Property (churn): any seeded sequence of commit / release / migrate
   events — including migrations forced to fail and roll back — that
   ends with every tenant departed restores the ledger bit-exactly:
   residuals at full capacity, zero usage totals, zero outstanding
   allocations.  500 traces; failed migrations occur whenever the
   generator emits an oversized migration target, which the amount
   range makes frequent. *)
let prop_churn_restores =
  let open QCheck in
  let op =
    triple (int_bound 5) (int_bound 3)
      (map (fun k -> float_of_int k /. 89.0) (int_bound 40000))
  in
  Test.make ~name:"churn (commit/release/migrate) drains to pristine" ~count:500
    (list_of_size (Gen.int_range 1 60) op)
    (fun ops ->
      let ledger = Ledger.of_graph (host ()) in
      let live = ref [] in
      let failed_migrations = ref 0 in
      let charge_for v amount =
        [
          line (Ledger.Node v) "cpuMhz" amount;
          line (Ledger.Edge v) "bandwidth" (amount /. 7.0);
        ]
      in
      List.iter
        (fun (kind, v, amount) ->
          match kind with
          | 0 | 1 | 2 -> (
              (* arrivals may over-commit; rejected ones charge nothing *)
              match Ledger.try_commit ledger (charge_for v amount) with
              | Ok id -> live := (id, charge_for v amount) :: !live
              | Error _ -> ())
          | 3 -> (
              (* departure of an arbitrary live tenant *)
              match !live with
              | [] -> ()
              | picked ->
                  let n = List.length picked in
                  let id, _ = List.nth picked (v mod n) in
                  if not (Ledger.release ledger id) then
                    QCheck.Test.fail_report "release of live id failed";
                  live := List.filter (fun (i, _) -> i <> id) !live)
          | _ -> (
              (* migration, to a possibly-impossible target *)
              match !live with
              | [] -> ()
              | picked -> (
                  let n = List.length picked in
                  let id, old = List.nth picked (v mod n) in
                  let charge' = charge_for ((v + 1) mod 4) amount in
                  match Ledger.migrate ledger id charge' with
                  | Ok id' ->
                      live :=
                        (id', charge')
                        :: List.filter (fun (i, _) -> i <> id) !live
                  | Error _ ->
                      (* rollback: same id, same charge, still live *)
                      incr failed_migrations;
                      if Ledger.allocation_charge ledger id <> Some old then
                        QCheck.Test.fail_report
                          "failed migration did not preserve the victim")))
        ops;
      List.iter (fun (id, _) -> ignore (Ledger.release ledger id)) !live;
      List.for_all
        (fun v ->
          Ledger.residual ledger (Ledger.Node v) "cpuMhz" = 1000.0
          && Ledger.residual ledger (Ledger.Node v) "memMB" = 1024.0
          && Ledger.residual ledger (Ledger.Edge v) "bandwidth" = 100.0)
        [ 0; 1; 2; 3 ]
      && Ledger.outstanding ledger = 0
      && List.for_all
           (fun (_, _, used, _) -> used = 0.0)
           (Ledger.utilization ledger)
      && Ledger.fragmentation_index ledger = 0.0)

let () =
  Alcotest.run "ledger"
    [
      ( "accounting",
        [
          Alcotest.test_case "tracking" `Quick test_tracking;
          Alcotest.test_case "commit/release round-trip" `Quick test_roundtrip_exact;
          Alcotest.test_case "atomicity" `Quick test_atomicity;
          Alcotest.test_case "multi-tenant exhaustion" `Quick test_multi_tenant;
          Alcotest.test_case "charge of mapping" `Quick test_charge_of_mapping;
          Alcotest.test_case "migrate" `Quick test_migrate;
          Alcotest.test_case "migrate reuses own capacity" `Quick
            test_migrate_reuses_own_capacity;
          Alcotest.test_case "migrate rollback" `Quick test_migrate_rollback;
          Alcotest.test_case "fragmentation" `Quick test_fragmentation;
          QCheck_alcotest.to_alcotest prop_release_restores;
          QCheck_alcotest.to_alcotest prop_churn_restores;
        ] );
      ( "integration",
        [
          Alcotest.test_case "residual search never over-commits" `Quick
            test_residual_search_never_overcommits;
          Alcotest.test_case "admission" `Quick test_admission;
          Alcotest.test_case "lock" `Quick test_lock;
          Alcotest.test_case "sync + credit" `Quick test_sync_and_credit;
        ] );
    ]
