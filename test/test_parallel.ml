module Graph = Netembed_graph.Graph
module Attrs = Netembed_attr.Attrs
module Value = Netembed_attr.Value
module Expr = Netembed_expr.Expr
module Rng = Netembed_rng.Rng
module Parallel = Netembed_parallel.Parallel
module Telemetry = Netembed_telemetry.Telemetry
open Netembed_core

let check = Alcotest.check

let delay d = Attrs.of_list [ ("avgDelay", Value.Float d) ]
let band lo hi = Attrs.of_list [ ("minDelay", Value.Float lo); ("maxDelay", Value.Float hi) ]

let instance seed ~host_n ~query_n =
  let rng = Rng.make seed in
  let host = Graph.create () in
  let hv = Array.init host_n (fun _ -> Graph.add_node host Attrs.empty) in
  for i = 1 to host_n - 1 do
    let j = Rng.int rng i in
    ignore (Graph.add_edge host hv.(j) hv.(i) (delay (Rng.uniform rng ~lo:5.0 ~hi:50.0)))
  done;
  for _ = 1 to host_n * 2 do
    let u = Rng.int rng host_n and v = Rng.int rng host_n in
    if u <> v && not (Graph.mem_edge host hv.(u) hv.(v)) then
      ignore (Graph.add_edge host hv.(u) hv.(v) (delay (Rng.uniform rng ~lo:5.0 ~hi:50.0)))
  done;
  let query = Graph.create () in
  let qv = Array.init query_n (fun _ -> Graph.add_node query Attrs.empty) in
  for i = 1 to query_n - 1 do
    let j = Rng.int rng i in
    let center = Rng.uniform rng ~lo:5.0 ~hi:50.0 in
    ignore (Graph.add_edge query qv.(j) qv.(i) (band (center -. 10.0) (center +. 10.0)))
  done;
  Problem.make ~host ~query Expr.avg_delay_within

let test_ecf_all_equals_sequential () =
  for seed = 1 to 8 do
    let p = instance seed ~host_n:14 ~query_n:5 in
    let seq = List.sort_uniq Mapping.compare (Engine.find_all Engine.ECF p) in
    let par, outcome = Parallel.ecf_all ~domains:3 p in
    let par = List.sort_uniq Mapping.compare par in
    check Alcotest.bool "complete" true (outcome = Engine.Complete);
    if List.length seq <> List.length par then
      Alcotest.failf "seed %d: sequential %d, parallel %d" seed (List.length seq)
        (List.length par);
    check Alcotest.bool "same set" true (List.for_all2 Mapping.equal seq par)
  done

let test_ecf_all_single_domain () =
  let p = instance 20 ~host_n:12 ~query_n:4 in
  let seq = List.sort_uniq Mapping.compare (Engine.find_all Engine.ECF p) in
  let par, _ = Parallel.ecf_all ~domains:1 p in
  check Alcotest.int "one-domain parity" (List.length seq)
    (List.length (List.sort_uniq Mapping.compare par))

let test_rwb_race () =
  let p = instance 5 ~host_n:16 ~query_n:5 in
  let has_solution = Engine.find_first Engine.ECF p <> None in
  match Parallel.rwb_race ~domains:3 ~timeout:10.0 p with
  | Some m ->
      check Alcotest.bool "instance solvable" true has_solution;
      check Alcotest.bool "valid" true (Verify.is_valid p m)
  | None -> check Alcotest.bool "no solution exists" false has_solution

(* Deterministic version of the race: a fixed seed pins every racer's
   restart schedule and a spin-barrier rendezvous releases all racers
   at once, so the cancellation path (winner posts, budgets of the
   losers trip) is exercised on every run instead of depending on
   spawn-order timing. *)
let test_rwb_race_rendezvous () =
  let p = instance 5 ~host_n:16 ~query_n:5 in
  check Alcotest.bool "instance solvable" true (Engine.find_first Engine.ECF p <> None);
  let k = 3 in
  let arrived = Atomic.make 0 in
  let rendezvous _i =
    Atomic.incr arrived;
    while Atomic.get arrived < k do
      Domain.cpu_relax ()
    done
  in
  for _ = 1 to 3 do
    Atomic.set arrived 0;
    match Parallel.rwb_race ~domains:k ~seed:7 ~timeout:30.0 ~rendezvous p with
    | Some m -> check Alcotest.bool "valid" true (Verify.is_valid p m)
    | None -> Alcotest.fail "solvable instance produced no winner"
  done

let test_rwb_race_infeasible () =
  let host = Netembed_topology.Regular.ring ~edge:(delay 10.0) 6 in
  let query = Graph.create () in
  let a = Graph.add_node query Attrs.empty and b = Graph.add_node query Attrs.empty in
  ignore (Graph.add_edge query a b (band 100.0 200.0));
  let p = Problem.make ~host ~query Expr.avg_delay_within in
  check Alcotest.bool "no winner" true (Parallel.rwb_race ~domains:2 ~timeout:5.0 p = None)

(* Regression: more domains than root candidates used to spawn workers
   with empty shares; shares are now filtered out before spawning and
   the domain count is clamped below the runtime ceiling, so an absurd
   [domains] must still answer Complete with the full mapping set. *)
let test_domains_exceed_roots () =
  let p = instance 30 ~host_n:12 ~query_n:4 in
  let seq = List.sort_uniq Mapping.compare (Engine.find_all Engine.ECF p) in
  List.iter
    (fun strategy ->
      let st = Parallel.ecf_all_stats ~strategy ~domains:500 p in
      check Alcotest.bool "complete" true (st.Parallel.outcome = Engine.Complete);
      let par = List.sort_uniq Mapping.compare st.Parallel.mappings in
      check Alcotest.int "count" (List.length seq) (List.length par);
      check Alcotest.bool "same set" true (List.for_all2 Mapping.equal seq par))
    [ Parallel.Static; Parallel.Work_stealing ]

(* The registry handed to [ecf_all_stats] must equal the sum of the
   per-domain registries the workers wrote into — merging them again
   into a fresh registry reproduces the merged exposition byte for
   byte, and the merged visited counter matches the per-domain visited
   breakdown. *)
let test_merged_registry_equals_sum () =
  let p = instance 7 ~host_n:14 ~query_n:5 in
  let merged = Telemetry.Registry.create () in
  let st =
    Parallel.ecf_all_stats ~strategy:Parallel.Work_stealing ~domains:4
      ~registry:merged p
  in
  let manual = Telemetry.Registry.create () in
  List.iter
    (fun reg -> Telemetry.Registry.merge_into ~dst:manual reg)
    st.Parallel.domain_registries;
  check Alcotest.string "merged exposition = sum of per-domain expositions"
    (Telemetry.Registry.to_prometheus manual)
    (Telemetry.Registry.to_prometheus merged);
  let visited_counter =
    Telemetry.Registry.counter merged ~labels:[ ("algorithm", "ECF") ]
      "netembed_visited_nodes_total"
  in
  check Alcotest.int "visited counter = sum of per-domain visited"
    (Parallel.visited_total st)
    (Telemetry.Counter.value visited_counter)

(* Spans recorded by spawned workers land in the request's trace
   buffer carrying the worker's tid — one Chrome-trace lane per domain.
   Static is deterministic (every worker records its share span, even
   an empty one), so it pins "spans from >= 2 worker domains";
   work-stealing pins that frame spans attribute to whichever worker
   ran them. *)
let test_trace_spans_from_workers () =
  let p = instance 7 ~host_n:14 ~query_n:5 in
  let tids_of trace =
    let tids = ref [] in
    Telemetry.Trace.iter
      (fun ~name:_ ~tid ~start_us:_ ~dur_us:_ ->
        if not (List.mem tid !tids) then tids := tid :: !tids)
      trace;
    !tids
  in
  let trace = Telemetry.Trace.create () in
  ignore (Parallel.ecf_all_stats ~strategy:Parallel.Static ~domains:3 ~trace p);
  let workers = List.filter (fun t -> t >= 1) (tids_of trace) in
  if List.length workers < 2 then
    Alcotest.failf "static: spans from only %d worker domain(s)"
      (List.length workers);
  let trace = Telemetry.Trace.create () in
  ignore
    (Parallel.ecf_all_stats ~strategy:Parallel.Work_stealing ~domains:3 ~trace p);
  check Alcotest.bool "work stealing records frame spans" true
    (Telemetry.Trace.length trace > 0);
  check Alcotest.bool "frame spans carry worker tids" true
    (List.exists (fun t -> t >= 1) (tids_of trace));
  (* The untraced path must record nothing anywhere (no shared global
     buffer to pollute). *)
  let untraced = Telemetry.Trace.create () in
  ignore (Parallel.ecf_all_stats ~domains:2 p);
  check Alcotest.int "untraced run records nothing" 0
    (Telemetry.Trace.length untraced)

let test_empty_query_parallel () =
  let host = Netembed_topology.Regular.ring 4 in
  let p = Problem.make ~host ~query:(Graph.create ()) Expr.always in
  let mappings, outcome = Parallel.ecf_all ~domains:2 p in
  check Alcotest.int "one empty mapping" 1 (List.length mappings);
  check Alcotest.bool "complete" true (outcome = Engine.Complete)

let () =
  Alcotest.run "parallel"
    [
      ( "ecf_all",
        [
          Alcotest.test_case "equals sequential (8 seeds)" `Quick test_ecf_all_equals_sequential;
          Alcotest.test_case "single domain" `Quick test_ecf_all_single_domain;
          Alcotest.test_case "empty query" `Quick test_empty_query_parallel;
          Alcotest.test_case "domains exceed roots" `Quick test_domains_exceed_roots;
          Alcotest.test_case "merged registry = sum" `Quick test_merged_registry_equals_sum;
          Alcotest.test_case "trace spans attribute to workers" `Quick
            test_trace_spans_from_workers;
        ] );
      ( "rwb_race",
        [
          Alcotest.test_case "finds valid winner" `Quick test_rwb_race;
          Alcotest.test_case "rendezvous determinism" `Quick test_rwb_race_rendezvous;
          Alcotest.test_case "infeasible" `Quick test_rwb_race_infeasible;
        ] );
    ]
