module Rng = Netembed_rng.Rng

let check = Alcotest.check

let test_determinism () =
  let a = Rng.make 123 and b = Rng.make 123 in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_seed_sensitivity () =
  let a = Rng.make 1 and b = Rng.make 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.bits64 a = Rng.bits64 b then incr same
  done;
  check Alcotest.bool "streams differ" true (!same < 4)

let test_copy () =
  let a = Rng.make 9 in
  ignore (Rng.bits64 a);
  let b = Rng.copy a in
  for _ = 1 to 50 do
    check Alcotest.int64 "copy tracks" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_split () =
  let a = Rng.make 5 in
  let b = Rng.split a in
  (* Parent and child produce different streams. *)
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.bits64 a = Rng.bits64 b then incr same
  done;
  check Alcotest.bool "split independent" true (!same < 4)

let test_int_bounds () =
  let rng = Rng.make 77 in
  for _ = 1 to 10_000 do
    let v = Rng.int rng 17 in
    if v < 0 || v >= 17 then Alcotest.fail "out of bounds"
  done;
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound <= 0") (fun () ->
      ignore (Rng.int rng 0))

let test_int_uniformity () =
  let rng = Rng.make 3 in
  let buckets = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let v = Rng.int rng 10 in
    buckets.(v) <- buckets.(v) + 1
  done;
  Array.iteri
    (fun i c ->
      let expected = n / 10 in
      if abs (c - expected) > expected / 5 then
        Alcotest.failf "bucket %d has %d, expected ~%d" i c expected)
    buckets

let test_float_bounds () =
  let rng = Rng.make 11 in
  for _ = 1 to 10_000 do
    let v = Rng.float rng 3.0 in
    if v < 0.0 || v >= 3.0 then Alcotest.fail "float out of bounds"
  done

let test_exponential_mean () =
  let rng = Rng.make 21 in
  let n = 50_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Rng.exponential rng ~mean:4.0
  done;
  let m = !sum /. float_of_int n in
  check Alcotest.bool "mean ~4" true (m > 3.8 && m < 4.2)

let test_normal_moments () =
  let rng = Rng.make 31 in
  let n = 50_000 in
  let sum = ref 0.0 and sq = ref 0.0 in
  for _ = 1 to n do
    let x = Rng.normal rng ~mean:10.0 ~stddev:2.0 in
    sum := !sum +. x;
    sq := !sq +. (x *. x)
  done;
  let m = !sum /. float_of_int n in
  let var = (!sq /. float_of_int n) -. (m *. m) in
  check Alcotest.bool "mean ~10" true (Float.abs (m -. 10.0) < 0.1);
  check Alcotest.bool "var ~4" true (Float.abs (var -. 4.0) < 0.3)

let test_pareto_support () =
  let rng = Rng.make 41 in
  for _ = 1 to 10_000 do
    if Rng.pareto rng ~shape:1.5 ~scale:2.0 < 2.0 then
      Alcotest.fail "pareto below scale"
  done

let test_bounded_pareto () =
  let rng = Rng.make 43 in
  let n = 20_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    let x = Rng.bounded_pareto rng ~shape:1.5 ~scale:2.0 ~cap:50.0 in
    if x < 2.0 then Alcotest.fail "bounded pareto below scale";
    if x > 50.0 then Alcotest.fail "bounded pareto above cap";
    sum := !sum +. x
  done;
  (* Truncation pulls the mean below the unbounded shape/(shape-1)*scale
     = 6.0; for cap=25*scale the truncated mean is ~4.9. *)
  let mean = !sum /. float_of_int n in
  check Alcotest.bool "heavy-tailed but truncated mean" true
    (mean > 3.5 && mean < 6.0);
  (* Degenerate bound: scale = cap collapses to a point mass. *)
  check Alcotest.bool "point mass at scale=cap" true
    (Rng.bounded_pareto rng ~shape:2.0 ~scale:3.0 ~cap:3.0 = 3.0);
  (match Rng.bounded_pareto rng ~shape:0.0 ~scale:1.0 ~cap:2.0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument on shape 0");
  match Rng.bounded_pareto rng ~shape:1.0 ~scale:5.0 ~cap:2.0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument on cap < scale"

let test_zipf () =
  let rng = Rng.make 51 in
  let counts = Array.make 11 0 in
  for _ = 1 to 20_000 do
    let k = Rng.zipf rng ~n:10 ~s:1.0 in
    if k < 1 || k > 10 then Alcotest.fail "zipf out of range";
    counts.(k) <- counts.(k) + 1
  done;
  check Alcotest.bool "rank 1 most frequent" true (counts.(1) > counts.(2));
  check Alcotest.bool "rank 2 beats rank 8" true (counts.(2) > counts.(8))

let test_shuffle_permutation () =
  let rng = Rng.make 61 in
  let arr = Array.init 50 (fun i -> i) in
  Rng.shuffle_in_place rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  check Alcotest.(array int) "same multiset" (Array.init 50 (fun i -> i)) sorted;
  (* Overwhelmingly likely to differ from identity. *)
  check Alcotest.bool "actually shuffled" true (arr <> Array.init 50 (fun i -> i))

let test_sample_without_replacement () =
  let rng = Rng.make 71 in
  for _ = 1 to 200 do
    let s = Rng.sample_without_replacement rng 10 30 in
    check Alcotest.int "size" 10 (Array.length s);
    let sorted = Array.copy s in
    Array.sort compare sorted;
    let distinct = Array.to_list sorted |> List.sort_uniq compare in
    check Alcotest.int "distinct" 10 (List.length distinct);
    Array.iter (fun v -> if v < 0 || v >= 30 then Alcotest.fail "out of range") s
  done;
  Alcotest.check_raises "k > n" (Invalid_argument "Rng.sample_without_replacement")
    (fun () -> ignore (Rng.sample_without_replacement rng 5 3))

let test_pick () =
  let rng = Rng.make 81 in
  let arr = [| "a"; "b"; "c" |] in
  for _ = 1 to 100 do
    let v = Rng.pick rng arr in
    if not (Array.mem v arr) then Alcotest.fail "pick outside array"
  done;
  Alcotest.check_raises "empty" (Invalid_argument "Rng.pick: empty array") (fun () ->
      ignore (Rng.pick rng [||]))

let prop_int_in_bounds =
  QCheck.Test.make ~name:"int always in bounds" ~count:1000
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, bound) ->
      let rng = Rng.make seed in
      let v = Rng.int rng bound in
      v >= 0 && v < bound)

let () =
  Alcotest.run "rng"
    [
      ( "stream",
        [
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
          Alcotest.test_case "copy" `Quick test_copy;
          Alcotest.test_case "split" `Quick test_split;
        ] );
      ( "draws",
        [
          Alcotest.test_case "int bounds" `Quick test_int_bounds;
          Alcotest.test_case "int uniformity" `Quick test_int_uniformity;
          Alcotest.test_case "float bounds" `Quick test_float_bounds;
          QCheck_alcotest.to_alcotest prop_int_in_bounds;
        ] );
      ( "distributions",
        [
          Alcotest.test_case "exponential mean" `Quick test_exponential_mean;
          Alcotest.test_case "normal moments" `Quick test_normal_moments;
          Alcotest.test_case "pareto support" `Quick test_pareto_support;
          Alcotest.test_case "bounded pareto" `Quick test_bounded_pareto;
          Alcotest.test_case "zipf" `Quick test_zipf;
        ] );
      ( "collections",
        [
          Alcotest.test_case "shuffle" `Quick test_shuffle_permutation;
          Alcotest.test_case "sample w/o replacement" `Quick test_sample_without_replacement;
          Alcotest.test_case "pick" `Quick test_pick;
        ] );
    ]
