module Graph = Netembed_graph.Graph
module Attrs = Netembed_attr.Attrs
module Value = Netembed_attr.Value
module Model = Netembed_service.Model
module Request = Netembed_service.Request
module Service = Netembed_service.Service
module Wire = Netembed_service.Wire
module Health = Netembed_service.Health
module Engine = Netembed_core.Engine
module Mapping = Netembed_core.Mapping
module Rng = Netembed_rng.Rng

let check = Alcotest.check

let delay d = Attrs.of_list [ ("avgDelay", Value.Float d) ]
let band lo hi = Attrs.of_list [ ("minDelay", Value.Float lo); ("maxDelay", Value.Float hi) ]

let host () =
  let g = Graph.create ~name:"host" () in
  let v = Array.init 5 (fun _ -> Graph.add_node g Attrs.empty) in
  ignore (Graph.add_edge g v.(0) v.(1) (delay 10.0));
  ignore (Graph.add_edge g v.(1) v.(2) (delay 20.0));
  ignore (Graph.add_edge g v.(2) v.(3) (delay 10.0));
  ignore (Graph.add_edge g v.(3) v.(4) (delay 20.0));
  ignore (Graph.add_edge g v.(4) v.(0) (delay 30.0));
  g

let path_query lo hi =
  let g = Graph.create ~name:"q" () in
  let q0 = Graph.add_node g Attrs.empty and q1 = Graph.add_node g Attrs.empty in
  ignore (Graph.add_edge g q0 q1 (band lo hi));
  g

let standard_constraint = "rEdge.avgDelay >= vEdge.minDelay && rEdge.avgDelay <= vEdge.maxDelay"

(* ------------------------------------------------------------------ *)
(* Model                                                               *)
(* ------------------------------------------------------------------ *)

let test_model_snapshot_isolated () =
  let g = host () in
  let m = Model.create g in
  (* Updating the model must not touch the caller's graph. *)
  Model.update_edge_attrs m 0 (delay 99.0);
  check (Alcotest.option (Alcotest.float 0.0)) "caller graph untouched" (Some 10.0)
    (Attrs.float "avgDelay" (Graph.edge_attrs g 0));
  check (Alcotest.option (Alcotest.float 0.0)) "model updated" (Some 99.0)
    (Attrs.float "avgDelay" (Graph.edge_attrs (Model.snapshot m) 0))

let test_model_revision () =
  let m = Model.create (host ()) in
  let r0 = Model.revision m in
  Model.update_node_attrs m 0 (Attrs.of_list [ ("load", Value.Float 0.5) ]);
  check Alcotest.bool "bumped" true (Model.revision m > r0);
  Model.reserve m [ 1; 2 ];
  check Alcotest.bool "bumped again" true (Model.revision m > r0 + 1)

let test_model_reserve () =
  let m = Model.create (host ()) in
  Model.reserve m [ 1; 3 ];
  check Alcotest.(list int) "reserved" [ 1; 3 ] (Model.reserved m);
  check Alcotest.bool "is_reserved" true (Model.is_reserved m 1);
  (match Model.reserve m [ 2; 1 ] with
  | exception Model.Conflict 1 -> ()
  | _ -> Alcotest.fail "expected Conflict 1");
  (* The failed call must not have reserved node 2. *)
  check Alcotest.bool "atomic failure" false (Model.is_reserved m 2);
  Model.release m [ 1 ];
  check Alcotest.(list int) "after release" [ 3 ] (Model.reserved m)

(* Regression: a node listed twice in one reserve call must raise
   Conflict and reserve nothing — previously the first occurrence was
   committed before the second was examined. *)
let test_model_reserve_duplicate () =
  let m = Model.create (host ()) in
  (match Model.reserve m [ 2; 2 ] with
  | exception Model.Conflict 2 -> ()
  | _ -> Alcotest.fail "expected Conflict 2");
  check Alcotest.(list int) "nothing reserved" [] (Model.reserved m);
  (* The duplicate may come after valid entries; those must not stick. *)
  (match Model.reserve m [ 0; 1; 0 ] with
  | exception Model.Conflict 0 -> ()
  | _ -> Alcotest.fail "expected Conflict 0");
  check Alcotest.(list int) "atomic failure" [] (Model.reserved m);
  let r0 = Model.revision m in
  check Alcotest.int "revision untouched by failed calls" r0 (Model.revision m)

let test_model_reserved_attr () =
  let m = Model.create (host ()) in
  check Alcotest.bool "reserved attr stamped false" true
    (Value.equal
       (Attrs.find_exn "reserved" (Graph.node_attrs (Model.snapshot m) 0))
       (Value.Bool false));
  Model.reserve m [ 0 ];
  check Alcotest.bool "reserved attr true" true
    (Value.equal
       (Attrs.find_exn "reserved" (Graph.node_attrs (Model.snapshot m) 0))
       (Value.Bool true))

(* ------------------------------------------------------------------ *)
(* Service                                                             *)
(* ------------------------------------------------------------------ *)

let test_submit_end_to_end () =
  let svc = Service.create (Model.create (host ())) in
  let request = Request.make ~mode:Engine.All ~query:(path_query 5.0 15.0) standard_constraint in
  match Service.submit svc request with
  | Error m -> Alcotest.fail m
  | Ok answer ->
      let r = answer.Service.result in
      check Alcotest.bool "complete" true (r.Engine.outcome = Engine.Complete);
      (* Host edges with delay in [5,15]: 0-1 (10) and 2-3 (10), both
         orientations each. *)
      check Alcotest.int "four mappings" 4 (List.length r.Engine.mappings)

let test_submit_bad_constraint () =
  let svc = Service.create (Model.create (host ())) in
  let request = Request.make ~query:(path_query 5.0 15.0) "vEdge.>>>" in
  match Service.submit svc request with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected constraint parse error"

let test_reservation_excludes () =
  let model = Model.create (host ()) in
  let svc = Service.create model in
  (* Reserve hosts 0 and 1: the only remaining in-band edge is 2-3. *)
  Model.reserve model [ 0; 1 ];
  let request = Request.make ~mode:Engine.All ~query:(path_query 5.0 15.0) standard_constraint in
  match Service.submit svc request with
  | Error m -> Alcotest.fail m
  | Ok answer ->
      check Alcotest.int "two mappings left" 2
        (List.length answer.Service.result.Engine.mappings);
      List.iter
        (fun m ->
          List.iter
            (fun (_, r) ->
              if r = 0 || r = 1 then Alcotest.fail "reserved host used")
            (Mapping.to_list m))
        answer.Service.result.Engine.mappings

let test_allocate_and_conflict () =
  let model = Model.create (host ()) in
  let svc = Service.create model in
  let request = Request.make ~query:(path_query 5.0 15.0) standard_constraint in
  match Service.submit svc request with
  | Error m -> Alcotest.fail m
  | Ok answer -> (
      match answer.Service.result.Engine.mappings with
      | [] -> Alcotest.fail "expected a mapping"
      | m :: _ -> (
          (match Service.allocate svc answer m with
          | Ok () -> ()
          | Error e -> Alcotest.fail e);
          check Alcotest.int "hosts reserved" 2 (List.length (Model.reserved model));
          (* Re-allocating from the now-stale answer must fail. *)
          match Service.allocate svc answer m with
          | Error _ -> Service.release_mapping svc m
          | Ok () -> Alcotest.fail "expected stale-revision failure"))

let test_relaxation () =
  let svc = Service.create (Model.create (host ())) in
  (* Band [1,2] matches nothing; three 20% relaxations widen it
     enough to catch the 10 ms links? 2 * 1.2^k >= 10 needs k ~ 9, so
     use a band that needs exactly two rounds: [5,7] -> 7*1.44 > 10. *)
  let request =
    Request.make ~mode:Engine.First ~query:(path_query 5.0 7.5) standard_constraint
  in
  match Service.submit_with_relaxation svc request ~steps:3 ~factor:0.2 with
  | Error m -> Alcotest.fail m
  | Ok (answer, rounds) ->
      check Alcotest.bool "found after relaxing" true
        (answer.Service.result.Engine.mappings <> []);
      check Alcotest.bool "took at least one round" true (rounds >= 1)

let test_request_relax () =
  let r = Request.make ~query:(path_query 10.0 20.0) standard_constraint in
  let r' = Request.relax r 0.5 in
  let attrs = Graph.edge_attrs r'.Request.query 0 in
  check (Alcotest.option (Alcotest.float 1e-9)) "min widened" (Some 5.0)
    (Attrs.float "minDelay" attrs);
  check (Alcotest.option (Alcotest.float 1e-9)) "max widened" (Some 30.0)
    (Attrs.float "maxDelay" attrs);
  (* Original untouched. *)
  check (Alcotest.option (Alcotest.float 1e-9)) "original" (Some 10.0)
    (Attrs.float "minDelay" (Graph.edge_attrs r.Request.query 0))

let test_constraint_file () =
  let path = Filename.temp_file "netembed" ".constraint" in
  let qpath = Filename.temp_file "netembed" ".graphml" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path; Sys.remove qpath)
    (fun () ->
      let oc = open_out path in
      output_string oc "# delay band\nrEdge.avgDelay >= vEdge.minDelay\nrEdge.avgDelay <= vEdge.maxDelay\n";
      close_out oc;
      Netembed_graphml.Graphml.write_file (path_query 5.0 15.0) qpath;
      let r = Request.of_files ~query_file:qpath ~constraint_file:path () in
      match Request.parse_constraints r with
      | Ok (_, None) -> ()
      | Ok (_, Some _) -> Alcotest.fail "unexpected node constraint"
      | Error m -> Alcotest.fail m)

(* ------------------------------------------------------------------ *)
(* Wire protocol                                                       *)
(* ------------------------------------------------------------------ *)

let test_wire_request_roundtrip () =
  let request =
    Request.make ~algorithm:Engine.LNS ~mode:(Engine.At_most 7) ~timeout:2.5
      ~query:(path_query 5.0 15.0) standard_constraint
  in
  match Wire.decode_request (Wire.encode_request request) with
  | Error m -> Alcotest.fail m
  | Ok r ->
      check Alcotest.bool "alg" true (r.Request.algorithm = Engine.LNS);
      check Alcotest.bool "mode" true (r.Request.mode = Engine.At_most 7);
      check (Alcotest.option (Alcotest.float 1e-9)) "timeout" (Some 2.5) r.Request.timeout;
      check Alcotest.int "query nodes" 2 (Graph.node_count r.Request.query);
      check Alcotest.string "constraint" standard_constraint r.Request.constraint_text

let test_wire_answer_roundtrip () =
  let svc = Service.create (Model.create (host ())) in
  let request = Request.make ~mode:Engine.All ~query:(path_query 5.0 15.0) standard_constraint in
  match Service.submit svc request with
  | Error m -> Alcotest.fail m
  | Ok answer -> (
      match Wire.decode_answer (Wire.encode_answer answer) with
      | Error m -> Alcotest.fail m
      | Ok decoded ->
          check Alcotest.bool "outcome" true (decoded.Wire.outcome = Engine.Complete);
          check Alcotest.int "mapping count" 4 (List.length decoded.Wire.mappings);
          check Alcotest.int "pairs per mapping" 2
            (List.length (List.hd decoded.Wire.mappings)))

let test_wire_errors () =
  (match Wire.decode_request "NOPE" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected decode failure");
  (match Wire.decode_request "EMBED alg=XYZ\nCONSTRAINT true\nGRAPHML\n<graphml/>" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected unknown algorithm");
  (match Wire.decode_answer (Wire.encode_error "boom") with
  | Error "boom" -> ()
  | Error m -> Alcotest.failf "wrong message %S" m
  | Ok _ -> Alcotest.fail "expected error answer")

(* ------------------------------------------------------------------ *)
(* Fractional allocations through the service                          *)
(* ------------------------------------------------------------------ *)

let capacitated_host () =
  let g = Graph.create ~name:"cap-host" () in
  let node =
    Attrs.of_list [ ("cpuMhz", Value.Int 1000); ("memMB", Value.Int 1024) ]
  in
  let edge d =
    Attrs.of_list [ ("avgDelay", Value.Float d); ("bandwidth", Value.Float 100.0) ]
  in
  let v = Array.init 4 (fun _ -> Graph.add_node g node) in
  ignore (Graph.add_edge g v.(0) v.(1) (edge 10.0));
  ignore (Graph.add_edge g v.(1) v.(2) (edge 10.0));
  ignore (Graph.add_edge g v.(2) v.(3) (edge 10.0));
  ignore (Graph.add_edge g v.(3) v.(0) (edge 10.0));
  g

let demanding_query ~cpu ~bw =
  let g = Graph.create ~name:"q" () in
  let node = Attrs.of_list [ ("cpuMhz", Value.Int cpu) ] in
  let q0 = Graph.add_node g node and q1 = Graph.add_node g node in
  ignore
    (Graph.add_edge g q0 q1
       (Attrs.of_list
          [
            ("minDelay", Value.Float 5.0);
            ("maxDelay", Value.Float 15.0);
            ("bandwidth", Value.Float bw);
          ]));
  g

let shared_constraint =
  "rEdge.avgDelay >= vEdge.minDelay && rEdge.avgDelay <= vEdge.maxDelay \
   && rEdge.bandwidth >= vEdge.bandwidth"

let shared_node_constraint = "rSource.cpuMhz >= vSource.cpuMhz"

let test_allocate_shared_lifecycle () =
  let module Telemetry = Netembed_telemetry.Telemetry in
  let registry = Telemetry.Registry.create () in
  let model = Model.create (capacitated_host ()) in
  let svc = Service.create ~registry model in
  let request =
    Request.make ~node_constraint:shared_node_constraint
      ~query:(demanding_query ~cpu:400 ~bw:60.0) shared_constraint
  in
  let submit_and_charge () =
    match Service.submit svc request with
    | Error m -> Alcotest.fail m
    | Ok answer -> (
        match answer.Service.result.Engine.mappings with
        | [] -> Alcotest.fail "expected a mapping"
        | m :: _ -> (answer, m, Service.allocate_shared svc answer m))
  in
  (* First tenant commits. *)
  let _, m1, r1 = submit_and_charge () in
  let id1 = match r1 with Ok id -> id | Error e -> Alcotest.fail e in
  check Alcotest.bool "cpu used recorded" true
    (List.exists
       (fun (r, k, used, _) -> r = "cpuMhz" && k = `Node && used = 800.0)
       (Service.utilization svc));
  (* Its hosts are still available to a second tenant (400+400 <= 1000),
     but the bandwidth demand (60+60 > 100) pushes tenant 2 off the
     first tenant's edge: residual pruning, not rejection. *)
  let a2, m2, r2 = submit_and_charge () in
  (match r2 with Ok _ -> () | Error e -> Alcotest.fail e);
  let edge_of m =
    match List.map snd (Mapping.to_list m) with
    | [ a; b ] -> if a < b then (a, b) else (b, a)
    | _ -> Alcotest.fail "two-node mapping expected"
  in
  check Alcotest.bool "second tenant avoids saturated edge" true
    (edge_of m1 <> edge_of m2);
  (* A stale answer must not charge: committing tenant 2 bumped the
     revision, so tenant 2's own answer is already out of date. *)
  (match Service.allocate_shared svc a2 m2 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected stale-revision failure");
  (* Freeing tenant 1 restores its capacity exactly. *)
  check Alcotest.bool "free known id" true (Service.free svc id1);
  check Alcotest.bool "free unknown id" false (Service.free svc id1);
  let cpu_used =
    List.find_map
      (fun (r, k, used, _) ->
        if r = "cpuMhz" && k = `Node then Some used else None)
      (Service.utilization svc)
  in
  check (Alcotest.option (Alcotest.float 0.0)) "only tenant 2 remains"
    (Some 800.0) cpu_used

(* A migration is a move, not an admission: the allocation/active
   counters must not change on success, and a failed migration must
   leave the victim allocation intact under its original id with no
   partial charges leaked. *)
let test_migrate_atomic () =
  let module Telemetry = Netembed_telemetry.Telemetry in
  let module Ledger = Netembed_ledger.Ledger in
  let registry = Telemetry.Registry.create () in
  let svc = Service.create ~registry (Model.create (capacitated_host ())) in
  let counter name =
    Telemetry.Counter.value (Telemetry.Registry.counter registry name)
  in
  let active () =
    Telemetry.Gauge.value
      (Telemetry.Registry.gauge registry "netembed_active_allocations")
  in
  let query = demanding_query ~cpu:400 ~bw:60.0 in
  let request =
    Request.make ~node_constraint:shared_node_constraint
      ~mode:(Engine.At_most 8) ~query shared_constraint
  in
  let answer =
    match Service.submit svc request with
    | Ok a -> a
    | Error m -> Alcotest.fail m
  in
  let m1, m2 =
    match answer.Service.result.Engine.mappings with
    | a :: b :: _ -> (a, b)
    | _ -> Alcotest.fail "expected at least two candidate mappings"
  in
  let id =
    match Service.allocate_shared svc answer m1 with
    | Ok id -> id
    | Error m -> Alcotest.fail m
  in
  check Alcotest.int "one admission" 1 (counter "netembed_allocations_total");
  check (Alcotest.float 0.0) "one active" 1.0 (active ());
  let charge_before = Service.allocation_charge svc id in
  check Alcotest.bool "charge introspectable" true (charge_before <> None);
  (* Success: new id, same counters, charge follows the new mapping. *)
  let id' =
    match Service.migrate svc id ~query m2 with
    | Ok id' -> id'
    | Error m -> Alcotest.fail m
  in
  check Alcotest.(list int) "old handle retired" [ id' ]
    (Service.allocation_ids svc);
  check Alcotest.int "no new admission" 1 (counter "netembed_allocations_total");
  check (Alcotest.float 0.0) "still one active" 1.0 (active ());
  check Alcotest.int "migration counted" 1 (counter "netembed_migrations_total");
  (* Failure: an impossible re-embed rolls back inside the ledger. *)
  let impossible = demanding_query ~cpu:1_000_000 ~bw:60.0 in
  let kept = Service.allocation_charge svc id' in
  (match Service.migrate svc id' ~query:impossible m1 with
  | Ok _ -> Alcotest.fail "expected over-commit"
  | Error m ->
      let contains s sub =
        let n = String.length s and m = String.length sub in
        let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
        go 0
      in
      check Alcotest.bool "names cpu" true (contains m "cpuMhz"));
  check Alcotest.int "failure counted" 1
    (counter "netembed_migration_failures_total");
  check Alcotest.(list int) "victim intact" [ id' ] (Service.allocation_ids svc);
  check Alcotest.bool "victim charge untouched" true
    (Service.allocation_charge svc id' = kept);
  check (Alcotest.float 0.0) "active unchanged" 1.0 (active ());
  check Alcotest.bool "no partial charge leaked" true
    (List.for_all
       (fun (r, _, used, _) -> r <> "cpuMhz" || used = 800.0)
       (Service.utilization svc));
  (* Drain: everything restores. *)
  check Alcotest.bool "free" true (Service.free svc id');
  check (Alcotest.float 0.0) "none active" 0.0 (active ());
  check Alcotest.bool "usage zero" true
    (List.for_all (fun (_, _, used, _) -> used = 0.0) (Service.utilization svc));
  check Alcotest.int "ledger drained" 0
    (Ledger.outstanding (Model.ledger (Service.model svc)))

let test_admission_rejection () =
  let module Telemetry = Netembed_telemetry.Telemetry in
  let registry = Telemetry.Registry.create () in
  let svc = Service.create ~registry (Model.create (capacitated_host ())) in
  (* Aggregate demand 2 * 2500 = 5000 > total 4000 cpuMhz: rejected
     before the search, naming the resource. *)
  let request =
    Request.make ~query:(demanding_query ~cpu:2500 ~bw:1.0) shared_constraint
  in
  (match Service.submit svc request with
  | Error m ->
      check Alcotest.bool "names the resource" true
        (String.length m >= 10 && String.sub m 0 10 = "admission:")
  | Ok _ -> Alcotest.fail "expected admission rejection");
  check Alcotest.int "admission counter" 1
    (Telemetry.Counter.value
       (Telemetry.Registry.counter registry "netembed_admission_rejects_total"))

let test_wire_commands () =
  let request =
    Request.make ~algorithm:Engine.RWB ~query:(path_query 5.0 15.0)
      standard_constraint
  in
  (match Wire.decode_command (Wire.encode_command (Wire.Allocate request)) with
  | Ok (Wire.Allocate r) ->
      check Alcotest.bool "alg" true (r.Request.algorithm = Engine.RWB);
      check Alcotest.int "query nodes" 2 (Graph.node_count r.Request.query)
  | Ok _ -> Alcotest.fail "wrong command"
  | Error m -> Alcotest.fail m);
  (match Wire.decode_command (Wire.encode_command (Wire.Submit request)) with
  | Ok (Wire.Submit _) -> ()
  | _ -> Alcotest.fail "EMBED should decode as Submit");
  (match Wire.decode_command "FREE 42\n.\n" with
  | Ok (Wire.Free 42) -> ()
  | _ -> Alcotest.fail "FREE 42");
  (match Wire.decode_command "FREE 0\n.\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "allocation ids are positive");
  (match Wire.decode_command "UTIL\n.\n" with
  | Ok Wire.Utilization -> ()
  | _ -> Alcotest.fail "UTIL");
  (* The ALLOC response carries the allocation id through the OK header. *)
  (match
     Wire.decode_answer "OK outcome=complete count=1 elapsed=1.0 allocation=7\nMAPPING q0->r1 q1->r2\n.\n"
   with
  | Ok d ->
      check Alcotest.(option int) "allocation id" (Some 7) d.Wire.allocation;
      check Alcotest.int "mapping" 1 (List.length d.Wire.mappings)
  | Error m -> Alcotest.fail m);
  (* Utilization rows round-trip. *)
  let rows = [ ("cpuMhz", `Node, 1500.0, 6000.0); ("bandwidth", `Edge, 0.0, 400.0) ] in
  match Wire.decode_utilization (Wire.encode_utilization rows) with
  | Error m -> Alcotest.fail m
  | Ok decoded ->
      check Alcotest.int "two rows" 2 (List.length decoded);
      let r0 = List.hd decoded in
      check Alcotest.string "resource" "cpuMhz" r0.Wire.resource;
      check Alcotest.bool "kind" true (r0.Wire.kind = `Node);
      check (Alcotest.float 1e-9) "used" 1500.0 r0.Wire.used;
      check (Alcotest.float 1e-9) "capacity" 6000.0 r0.Wire.capacity

module Monitor = Netembed_service.Monitor

let test_monitor_updates () =
  let model = Model.create (host ()) in
  let before = Model.revision model in
  let mon =
    Monitor.create
      ~params:{ Monitor.default with Monitor.sample_fraction = 1.0; flap_probability = 0.0 }
      (Rng.make 5) model
  in
  Monitor.tick mon;
  check Alcotest.int "one tick" 1 (Monitor.ticks mon);
  check Alcotest.bool "revision bumped" true (Model.revision model > before);
  (* Delay invariants survive remeasurement. *)
  let g = Model.snapshot model in
  Graph.iter_edges
    (fun e _ _ ->
      let a = Graph.edge_attrs g e in
      let mn = Option.get (Attrs.float "minDelay" a) in
      let avg = Option.get (Attrs.float "avgDelay" a) in
      let mx = Option.get (Attrs.float "maxDelay" a) in
      if not (0.0 < mn && mn <= avg && avg <= mx) then
        Alcotest.failf "band violated after remeasure: %g %g %g" mn avg mx)
    g

let test_monitor_flaps_and_guard () =
  let model = Model.create (host ()) in
  let mon =
    Monitor.create
      ~params:{ Monitor.default with Monitor.flap_probability = 0.8; sample_fraction = 0.0 }
      (Rng.make 6) model
  in
  Monitor.tick mon;
  let down = Monitor.down_nodes mon in
  check Alcotest.bool "some nodes flapped down" true (down <> []);
  (* The liveness guard excludes them from embeddings. *)
  let p =
    Netembed_core.Problem.make ~node_constraint:Monitor.liveness_guard
      ~host:(Model.snapshot model) ~query:(path_query 5.0 500.0)
      (Netembed_expr.Expr.parse_exn standard_constraint)
  in
  List.iter
    (fun v ->
      if Netembed_core.Problem.node_ok p ~q:0 ~r:v then
        Alcotest.failf "down node %d still eligible" v)
    down;
  (* Flapping is reversible: more ticks can bring nodes back. *)
  for _ = 1 to 20 do Monitor.tick mon done;
  check Alcotest.bool "liveness tracked" true (List.length (Monitor.down_nodes mon) <= 5)

(* Negotiation under a flapping monitor: the relaxation-round counter
   in the service's registry must equal the rounds the answer reports,
   the model_revision of the answer (and the exported gauge) must match
   the model after the monitoring history, and replaying the identical
   history must reproduce all of it. *)
let test_relaxation_under_monitor_flaps () =
  let module Telemetry = Netembed_telemetry.Telemetry in
  let run_history () =
    let registry = Telemetry.Registry.create () in
    let model = Model.create (host ()) in
    let svc = Service.create ~registry model in
    let mon =
      Monitor.create
        ~params:
          { Monitor.default with Monitor.flap_probability = 0.3; sample_fraction = 1.0 }
        (Rng.make 11) model
    in
    for _ = 1 to 7 do Monitor.tick mon done;
    let request =
      Request.make ~mode:Engine.First ~node_constraint:"rSource.up"
        ~query:(path_query 5.0 7.5) standard_constraint
    in
    match Service.submit_with_relaxation svc request ~steps:6 ~factor:0.2 with
    | Error m -> Alcotest.fail m
    | Ok (answer, rounds) ->
        let counter_rounds =
          Telemetry.Counter.value
            (Telemetry.Registry.counter registry "netembed_relaxation_rounds_total")
        in
        check Alcotest.int "rounds counter matches answer" rounds counter_rounds;
        check Alcotest.int "revision matches live model" (Model.revision model)
          answer.Service.model_revision;
        check (Alcotest.float 0.0) "gauge tracks revision"
          (float_of_int answer.Service.model_revision)
          (Telemetry.Gauge.value
             (Telemetry.Registry.gauge registry "netembed_model_revision"));
        (* Every submit (initial + one per relaxation round) was latency-
           timed. *)
        check Alcotest.int "latency histogram counts submits" (rounds + 1)
          (Telemetry.Histogram.count
             (Telemetry.Registry.histogram registry "netembed_request_latency_us"));
        ( rounds,
          answer.Service.model_revision,
          List.length answer.Service.result.Engine.mappings,
          Monitor.down_nodes mon )
  in
  let a = run_history () in
  let b = run_history () in
  check Alcotest.bool "replayed history reproduces the negotiation" true (a = b)

let test_monitor_determinism () =
  let run seed =
    let model = Model.create (host ()) in
    let mon = Monitor.create (Rng.make seed) model in
    for _ = 1 to 10 do Monitor.tick mon done;
    (Model.revision model, Monitor.down_nodes mon)
  in
  check Alcotest.bool "same seed, same history" true (run 3 = run 3)

(* ------------------------------------------------------------------ *)
(* Cross-request filter cache                                          *)
(* ------------------------------------------------------------------ *)

module Filter_cache = Netembed_service.Filter_cache
module Problem = Netembed_core.Problem

let add_built cache ~revision ~signature query =
  let p =
    Problem.make ~host:(host ()) ~query
      (Netembed_expr.Expr.parse_exn standard_constraint)
  in
  Filter_cache.add cache ~revision ~signature
    ~compiled:(Problem.compiled_programs p)
    (Netembed_core.Filter.build p)

let sig_of ?node_constraint_text lo hi =
  Filter_cache.signature ~query:(path_query lo hi)
    ~constraint_text:standard_constraint ~node_constraint_text

let test_filter_cache_lru () =
  let cache = Filter_cache.create ~capacity:2 () in
  let s1 = sig_of 5.0 15.0 and s2 = sig_of 5.0 25.0 and s3 = sig_of 15.0 25.0 in
  check Alcotest.bool "distinct signatures" true (s1 <> s2 && s2 <> s3 && s1 <> s3);
  check Alcotest.bool "miss on empty" true
    (Filter_cache.find cache ~revision:1 ~signature:s1 = None);
  add_built cache ~revision:1 ~signature:s1 (path_query 5.0 15.0);
  add_built cache ~revision:1 ~signature:s2 (path_query 5.0 25.0);
  check Alcotest.int "two entries" 2 (Filter_cache.length cache);
  check Alcotest.bool "hit refreshes recency" true
    (Filter_cache.find cache ~revision:1 ~signature:s1 <> None);
  (* s1 was just touched, so inserting s3 at capacity evicts s2. *)
  add_built cache ~revision:1 ~signature:s3 (path_query 15.0 25.0);
  check Alcotest.int "one eviction" 1 (Filter_cache.evictions cache);
  check Alcotest.bool "LRU entry gone" true
    (Filter_cache.find cache ~revision:1 ~signature:s2 = None);
  check Alcotest.bool "recent entry survives" true
    (Filter_cache.find cache ~revision:1 ~signature:s1 <> None);
  check Alcotest.bool "other revision misses" true
    (Filter_cache.find cache ~revision:2 ~signature:s1 = None)

let test_filter_cache_invalidation () =
  let cache = Filter_cache.create () in
  let s = sig_of 5.0 15.0 in
  add_built cache ~revision:3 ~signature:s (path_query 5.0 15.0);
  (* Same revision: nothing to drop. *)
  Filter_cache.invalidate cache ~current_revision:3;
  check Alcotest.int "kept at same revision" 1 (Filter_cache.length cache);
  Filter_cache.invalidate cache ~current_revision:4;
  check Alcotest.int "dropped on revision bump" 0 (Filter_cache.length cache);
  check Alcotest.int "counted as invalidation" 1 (Filter_cache.invalidations cache);
  check Alcotest.int "not as eviction" 0 (Filter_cache.evictions cache)

let test_filter_cache_signature_sensitivity () =
  check Alcotest.string "deterministic" (sig_of 5.0 15.0) (sig_of 5.0 15.0);
  check Alcotest.bool "band change changes signature" true
    (sig_of 5.0 15.0 <> sig_of 5.0 15.5);
  check Alcotest.bool "node constraint in signature" true
    (sig_of 5.0 15.0 <> sig_of ~node_constraint_text:"rSource.up" 5.0 15.0);
  check Alcotest.bool "constraint text in signature" true
    (Filter_cache.signature ~query:(path_query 5.0 15.0) ~constraint_text:"true"
       ~node_constraint_text:None
    <> sig_of 5.0 15.0)

(* The id and trace id are fresh per request and elapsed/phases are
   wall-clock; everything else about a warm answer must match the cold
   one byte for byte. *)
let normalize_answer s =
  match String.split_on_char '\n' s with
  | header :: rest ->
      let has_prefix p tok =
        String.length tok >= String.length p
        && String.sub tok 0 (String.length p) = p
      in
      let keep tok =
        not
          (has_prefix "id=" tok || has_prefix "elapsed=" tok
          || has_prefix "trace=" tok || has_prefix "phases=" tok)
      in
      let header = String.concat " " (List.filter keep (String.split_on_char ' ' header)) in
      String.concat "\n" (header :: rest)
  | [] -> s

let test_service_cache_warm_vs_cold () =
  let module Telemetry = Netembed_telemetry.Telemetry in
  let registry = Telemetry.Registry.create () in
  let svc = Service.create ~registry (Model.create (host ())) in
  let request =
    Request.make ~mode:Engine.All ~query:(path_query 5.0 15.0) standard_constraint
  in
  let submit () =
    match Service.submit svc request with Ok a -> a | Error m -> Alcotest.fail m
  in
  let value name =
    Telemetry.Counter.value (Telemetry.Registry.counter registry name)
  in
  let cold = submit () in
  check Alcotest.int "cold run misses" 1 (value "netembed_filter_cache_misses_total");
  check Alcotest.int "cold run cannot hit" 0 (value "netembed_filter_cache_hits_total");
  (* The cache entry carries the compiled-constraint bundle: a warm
     submit must not compile any bytecode, so the global compile
     counter stays flat across it. *)
  let compiles_before_warm = Netembed_expr.Compile.compiles_total () in
  let warm = submit () in
  check Alcotest.int "warm run hits" 1 (value "netembed_filter_cache_hits_total");
  check Alcotest.int "warm run skips the build" 1
    (value "netembed_filter_cache_misses_total");
  check Alcotest.int "warm run skips compilation" compiles_before_warm
    (Netembed_expr.Compile.compiles_total ());
  check Alcotest.string "byte-identical modulo id/elapsed"
    (normalize_answer (Wire.encode_answer cold))
    (normalize_answer (Wire.encode_answer warm))

let test_service_cache_revision_invalidation () =
  let model = Model.create (host ()) in
  let svc = Service.create model in
  let request =
    Request.make ~mode:Engine.All ~query:(path_query 5.0 15.0) standard_constraint
  in
  let submit () =
    match Service.submit svc request with Ok a -> a | Error m -> Alcotest.fail m
  in
  ignore (submit ());
  ignore (submit ());
  let cache = Service.filter_cache svc in
  check Alcotest.int "entry cached" 1 (Filter_cache.length cache);
  (* The model moved on: the cached filter may describe edges that no
     longer exist, so the next submit must rebuild. *)
  Model.update_edge_attrs model 0 (delay 99.0);
  let fresh = submit () in
  check Alcotest.bool "stale entry invalidated" true
    (Filter_cache.invalidations cache >= 1);
  (* Edge 0-1 left the band, so only 2-3 remains (both orientations). *)
  check Alcotest.int "answer reflects new model" 2
    (List.length fresh.Service.result.Engine.mappings)

(* LNS mutates per-iteration state that a shared filter would leak
   across requests; the service must bypass the cache for it. *)
let test_service_cache_skips_lns () =
  let svc = Service.create (Model.create (host ())) in
  let request =
    Request.make ~algorithm:Engine.LNS ~query:(path_query 5.0 15.0)
      standard_constraint
  in
  (match Service.submit svc request with
  | Ok _ -> ()
  | Error m -> Alcotest.fail m);
  check Alcotest.int "nothing cached for LNS" 0
    (Filter_cache.length (Service.filter_cache svc))

(* Multi-domain service: the work-stealing path must return the same
   mapping set as the sequential path, report through the same answer
   shape, and share the filter cache. *)
let test_service_parallel_path () =
  let module Telemetry = Netembed_telemetry.Telemetry in
  let registry = Telemetry.Registry.create () in
  let par = Service.create ~registry ~domains:3 (Model.create (host ())) in
  let seq = Service.create (Model.create (host ())) in
  check Alcotest.int "domains recorded" 3 (Service.domains par);
  let request =
    Request.make ~mode:Engine.All ~query:(path_query 5.0 15.0) standard_constraint
  in
  let mappings svc =
    match Service.submit svc request with
    | Error m -> Alcotest.fail m
    | Ok a -> List.sort_uniq Mapping.compare a.Service.result.Engine.mappings
  in
  let mp = mappings par and ms = mappings seq in
  check Alcotest.int "same count" (List.length ms) (List.length mp);
  check Alcotest.bool "same set" true (List.for_all2 Mapping.equal ms mp);
  (* Second submit on the parallel service hits the shared cache. *)
  ignore (mappings par);
  check Alcotest.int "parallel path hits cache" 1
    (Telemetry.Counter.value
       (Telemetry.Registry.counter registry "netembed_filter_cache_hits_total"));
  (* The steal counter is pre-registered so scrapes always see the series. *)
  let exposition = Telemetry.Registry.to_prometheus registry in
  let contains hay needle =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  check Alcotest.bool "steals series exposed" true
    (contains exposition "netembed_steals_total")

(* ------------------------------------------------------------------ *)
(* Request tracing, phase decomposition and TOP                        *)
(* ------------------------------------------------------------------ *)

let test_tracing_and_phases () =
  let module Telemetry = Netembed_telemetry.Telemetry in
  let svc =
    Service.create
      ~registry:(Telemetry.Registry.create ())
      (Model.create (host ()))
  in
  let request =
    Request.make ~mode:Engine.All ~query:(path_query 5.0 15.0) standard_constraint
  in
  (* Untraced submit: a trace id is still allocated (it keys EXPLAIN
     exemplars) but no span buffer is built. *)
  (match Service.submit svc request with
  | Error m -> Alcotest.fail m
  | Ok a ->
      check Alcotest.bool "trace id allocated" true (a.Service.trace_id > 0);
      check Alcotest.bool "no buffer unless asked" true (a.Service.trace = None);
      let phases = a.Service.result.Engine.telemetry.Telemetry.phases in
      check Alcotest.int "one cell per phase" Telemetry.Phase.count
        (Array.length phases);
      check Alcotest.bool "some phase time recorded" true
        (Array.exists (fun v -> v > 0.0) phases));
  (* Traced submit: the buffer carries the outer request span plus the
     engine's phase spans, and the wire header carries trace and
     phases tokens that decode back. *)
  match Service.submit ~trace:true svc request with
  | Error m -> Alcotest.fail m
  | Ok a -> (
      let buf =
        match a.Service.trace with
        | Some b -> b
        | None -> Alcotest.fail "traced submit returned no buffer"
      in
      let names = ref [] in
      Netembed_telemetry.Telemetry.Trace.iter
        (fun ~name ~tid:_ ~start_us:_ ~dur_us:_ -> names := name :: !names)
        buf;
      check Alcotest.bool "request span present" true (List.mem "request" !names);
      check Alcotest.bool "descent span present" true (List.mem "descent" !names);
      match Wire.decode_answer (Wire.encode_answer a) with
      | Error m -> Alcotest.fail m
      | Ok d ->
          check (Alcotest.option Alcotest.int) "trace id on the wire"
            (Some a.Service.trace_id) d.Wire.trace_id;
          check Alcotest.bool "phases on the wire" true (d.Wire.phases_ms <> []))

let test_top_report_and_wire () =
  let module Telemetry = Netembed_telemetry.Telemetry in
  (* slow_threshold 0 retains every request, so worst is populated. *)
  let svc =
    Service.create
      ~registry:(Telemetry.Registry.create ())
      ~slow_threshold:0.0
      (Model.create (host ()))
  in
  let request =
    Request.make ~mode:Engine.All ~query:(path_query 5.0 15.0) standard_constraint
  in
  for _ = 1 to 3 do
    match Service.submit svc request with
    | Ok _ -> ()
    | Error m -> Alcotest.fail m
  done;
  let report = Service.top ~worst:2 svc in
  check Alcotest.int "one stat per phase" Telemetry.Phase.count
    (List.length report.Service.busiest);
  check Alcotest.int "worst capped" 2 (List.length report.Service.worst);
  (match report.Service.busiest with
  | first :: rest ->
      check Alcotest.bool "sorted busiest first" true
        (List.for_all (fun (s : Service.phase_stat) -> s.Service.total_s <= first.Service.total_s) rest);
      check Alcotest.bool "some phase accumulated time" true
        (first.Service.total_s > 0.0)
  | [] -> Alcotest.fail "empty report");
  (* TOP is a first-class wire verb. *)
  (match Wire.decode_command (Wire.encode_command Wire.Top) with
  | Ok Wire.Top -> ()
  | Ok _ -> Alcotest.fail "TOP decoded as another command"
  | Error m -> Alcotest.fail m);
  let encoded = Wire.encode_top report in
  let contains needle =
    let nl = String.length needle and hl = String.length encoded in
    let rec go i = i + nl <= hl && (String.sub encoded i nl = needle || go (i + 1)) in
    go 0
  in
  check Alcotest.bool "phase rows" true (contains "PHASE name=search");
  check Alcotest.bool "slow rows" true (contains "SLOW id=");
  check Alcotest.bool "window advertised" true (contains "window=60")

(* A request whose wall-clock sits under the absolute slow threshold
   must still be retained when its search phase dominates. *)
let test_slow_search_flag () =
  let module Telemetry = Netembed_telemetry.Telemetry in
  let svc =
    Service.create
      ~registry:(Telemetry.Registry.create ())
      ~slow_threshold:1e-6 ~slow_search_share:0.0
      (Model.create (host ()))
  in
  let request =
    Request.make ~mode:Engine.All ~query:(path_query 5.0 15.0) standard_constraint
  in
  match Service.submit svc request with
  | Error m -> Alcotest.fail m
  | Ok a -> (
      match Service.explain svc a.Service.id with
      | None -> Alcotest.fail "search-dominated request not retained"
      | Some e ->
          check Alcotest.bool "flagged slow_search" true e.Service.slow_search;
          check Alcotest.int "entry carries the trace id" a.Service.trace_id
            e.Service.trace_id;
          check Alcotest.bool "entry carries the phase breakdown" true
            (Array.exists (fun v -> v > 0.0) e.Service.phases))

(* Oversized frames must come back as a clean wire error with the
   stream resynchronized at the terminator — the next frame parses. *)
let test_wire_frame_bound () =
  let path = Filename.temp_file "netembed_wire" ".txt" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  let oc = open_out path in
  output_string oc (String.make 100 'x');
  output_string oc "\n.\nEMBED alg=ECF mode=first\n.\nshort\n.\n";
  close_out oc;
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) @@ fun () ->
  (match Wire.read_frame ~max_bytes:64 ic with
  | Some (Error m) ->
      check Alcotest.string "canonical message" (Wire.frame_too_large ~limit:64) m
  | Some (Ok _) -> Alcotest.fail "oversized frame accepted"
  | None -> Alcotest.fail "oversized frame read as EOF");
  (match Wire.read_frame ~max_bytes:64 ic with
  | Some (Ok body) ->
      check Alcotest.string "stream resynchronized" "EMBED alg=ECF mode=first\n" body
  | Some (Error m) -> Alcotest.fail m
  | None -> Alcotest.fail "EOF after resync");
  (match Wire.read_frame ~max_bytes:64 ic with
  | Some (Ok body) -> check Alcotest.string "next frame intact" "short\n" body
  | Some (Error m) -> Alcotest.fail m
  | None -> Alcotest.fail "EOF on final frame");
  check Alcotest.bool "stream exhausted" true (Wire.read_frame ic = None)

(* A saturation reject is not a silent drop: it allocates a request id,
   bumps the queue-reject counter, and retains an EXPLAIN-able
   certificate — the acceptance contract of the bounded admission
   queue. *)
let test_backpressure_reject_explainable () =
  let module Telemetry = Netembed_telemetry.Telemetry in
  let registry = Telemetry.Registry.create () in
  let svc = Service.create ~registry (Model.create (host ())) in
  let counter name =
    Telemetry.Counter.value (Telemetry.Registry.counter registry name)
  in
  let entry = Service.reject_backpressure svc ~queue_depth:64 ~queue_capacity:64 in
  check Alcotest.string "backpressure verdict" "backpressure" entry.Service.verdict;
  check Alcotest.int "queue-reject counter" 1
    (counter "netembed_admission_queue_rejects_total");
  check Alcotest.int "also a request error" 1
    (counter "netembed_request_errors_total");
  (* The bounced id is immediately EXPLAIN-able. *)
  (match Service.explain svc entry.Service.id with
  | None -> Alcotest.fail "backpressure reject not retained in the ring"
  | Some e ->
      check Alcotest.string "retained verdict" "backpressure" e.Service.verdict;
      check Alcotest.int "same id" entry.Service.id e.Service.id;
      let contains hay needle =
        let n = String.length hay and m = String.length needle in
        let rec go i = i + m <= n && (String.sub hay i m = needle || go (i + 1)) in
        go 0
      in
      check Alcotest.bool "summary names the queue" true
        (contains e.Service.summary "queue");
      check Alcotest.bool "wire explanation renders" true
        (contains (Wire.encode_explanation e) "backpressure"));
  let e2 = Service.reject_backpressure svc ~queue_depth:3 ~queue_capacity:4 in
  check Alcotest.bool "rejects get distinct ids" true
    (e2.Service.id <> entry.Service.id);
  check Alcotest.int "counter accumulates" 2
    (counter "netembed_admission_queue_rejects_total")

(* Four client domains hammer one service through a start barrier:
   EMBEDs (every fifth a parse error), shared allocations freed
   immediately, stale-revision failures tolerated.  Afterwards the
   telemetry must balance exactly — the counters are maintained under
   the service's state lock, so concurrency may reorder but never lose
   increments — and the ledger must be back to zero residual use. *)
let test_concurrent_hammer () =
  let module Telemetry = Netembed_telemetry.Telemetry in
  let registry = Telemetry.Registry.create () in
  let svc = Service.create ~registry (Model.create (capacitated_host ())) in
  let counter name =
    Telemetry.Counter.value (Telemetry.Registry.counter registry name)
  in
  let domains = 4 and iters = 10 in
  let arrived = Atomic.make 0 in
  let barrier () =
    Atomic.incr arrived;
    while Atomic.get arrived < domains do
      Domain.cpu_relax ()
    done
  in
  let submits = Atomic.make 0 in
  let parse_errors = Atomic.make 0 in
  let allocs = Atomic.make 0 in
  let stale = Atomic.make 0 in
  let unexpected = Atomic.make 0 in
  let good =
    Request.make ~node_constraint:shared_node_constraint
      ~query:(demanding_query ~cpu:50 ~bw:2.0) shared_constraint
  in
  let bad = Request.make ~query:(demanding_query ~cpu:50 ~bw:2.0) "vEdge.>>>" in
  let worker () =
    barrier ();
    for i = 0 to iters - 1 do
      if i mod 5 = 0 then begin
        Atomic.incr submits;
        match Service.submit svc bad with
        | Error _ -> Atomic.incr parse_errors
        | Ok _ -> Atomic.incr unexpected
      end
      else begin
        Atomic.incr submits;
        match Service.submit svc good with
        | Error _ ->
            (* Tiny demands never trip admission; any error here is a
               bug. *)
            Atomic.incr unexpected
        | Ok answer -> (
            match answer.Service.result.Engine.mappings with
            | [] -> ()
            | m :: _ -> (
                match Service.allocate_shared svc answer m with
                | Ok id ->
                    Atomic.incr allocs;
                    if not (Service.free svc id) then Atomic.incr unexpected
                | Error _ ->
                    (* A sibling committed or freed between our snapshot
                       and our commit: the revision guard did its job. *)
                    Atomic.incr stale))
      end
    done
  in
  let ds = Array.init domains (fun _ -> Domain.spawn worker) in
  Array.iter Domain.join ds;
  check Alcotest.int "no unexpected outcomes" 0 (Atomic.get unexpected);
  check Alcotest.int "every submit counted exactly once"
    (Atomic.get submits)
    (counter "netembed_requests_total");
  check Alcotest.int "every parse error counted exactly once"
    (Atomic.get parse_errors)
    (counter "netembed_request_errors_total");
  (* Every well-formed ECF submit probes the filter cache exactly once;
     hit/miss classification is racy in *which* bucket, never in the
     sum. *)
  check Alcotest.int "cache hits + misses = cache lookups"
    (Atomic.get submits - Atomic.get parse_errors)
    (counter "netembed_filter_cache_hits_total"
    + counter "netembed_filter_cache_misses_total");
  check Alcotest.int "every commit counted"
    (Atomic.get allocs)
    (counter "netembed_allocations_total");
  check (Alcotest.float 0.0) "no allocation outlives its free" 0.0
    (Telemetry.Gauge.value
       (Telemetry.Registry.gauge registry "netembed_active_allocations"));
  List.iter
    (fun (resource, _, used, _) ->
      check (Alcotest.float 1e-9) ("residual restored: " ^ resource) 0.0 used)
    (Service.utilization svc);
  (* The diagnostics ring retained the parse errors and TOP still
     renders under the post-hammer state. *)
  let top = Service.top svc in
  check Alcotest.bool "ring retained failures" true
    (List.length top.Service.worst > 0);
  check Alcotest.bool "phase accounting accumulated" true
    (List.exists (fun p -> p.Service.total_s > 0.0) top.Service.busiest);
  check Alcotest.bool "at least one stale or alloc outcome" true
    (Atomic.get allocs + Atomic.get stale > 0)

(* ------------------------------------------------------------------ *)
(* Health state machine                                                *)
(* ------------------------------------------------------------------ *)

let health_config =
  {
    Health.latency_slo_s = 0.1;
    error_rate_slo = 0.01;
    fast_burn = 10.0;
    queue_high = 0.9;
    queue_low = 0.5;
    hysteresis = 2;
    fast_window = 10.0;
    slow_window = 60.0;
    slices = 5;
  }

(* Readiness must flap only after [hysteresis] consecutive window
   evaluations agree, in both directions — and recovery must come from
   the bad samples aging out of the injected-clock windows. *)
let test_health_hysteresis () =
  let module Telemetry = Netembed_telemetry.Telemetry in
  let registry = Telemetry.Registry.create () in
  let now = ref 1000.0 in
  let h = Health.create ~config:health_config ~clock:(fun () -> !now) ~registry () in
  let gauge () =
    int_of_float
      (Telemetry.Gauge.value
         (Telemetry.Registry.gauge registry "netembed_health_state"))
  in
  let eval () = Health.evaluate h ~queue_depth:0 ~queue_capacity:64 in
  check Alcotest.bool "starts healthy" true (eval () = Health.Healthy);
  (* Blow the latency SLO inside the fast window. *)
  for _ = 1 to 50 do
    Health.observe_request h ~latency_s:0.5 ~error:false
  done;
  check Alcotest.bool "one bad evaluation does not flip" true
    (eval () = Health.Healthy);
  check Alcotest.int "gauge still healthy" 0 (gauge ());
  check Alcotest.bool "second consecutive bad evaluation flips" true
    (eval () = Health.Degraded);
  check Alcotest.int "gauge degraded" 1 (gauge ());
  (* Recovery: age the bad samples out of both windows, then demand the
     same consecutive-evaluation streak on the way back. *)
  now := !now +. 2.0 *. health_config.Health.slow_window;
  check Alcotest.bool "one good evaluation does not recover" true
    (eval () = Health.Degraded);
  check Alcotest.bool "second consecutive good evaluation recovers" true
    (eval () = Health.Healthy);
  check Alcotest.int "gauge healthy again" 0 (gauge ())

(* Queue saturation enters at [queue_high] and leaves only below
   [queue_low] — the band keeps a hovering queue from flapping. *)
let test_health_queue_watermarks () =
  let module Telemetry = Netembed_telemetry.Telemetry in
  let registry = Telemetry.Registry.create () in
  let h =
    Health.create
      ~config:{ health_config with Health.hysteresis = 1 }
      ~clock:(fun () -> 0.0)
      ~registry ()
  in
  let eval depth = Health.evaluate h ~queue_depth:depth ~queue_capacity:10 in
  check Alcotest.bool "empty queue healthy" true (eval 0 = Health.Healthy);
  check Alcotest.bool "9/10 saturates" true (eval 9 = Health.Saturated);
  check Alcotest.bool "6/10 holds inside the band" true
    (eval 6 = Health.Saturated);
  check Alcotest.bool "4/10 leaves the band" true (eval 4 = Health.Healthy);
  let r = Health.report h in
  check Alcotest.int "report queue depth" 4 r.Health.queue_depth;
  check Alcotest.int "report queue capacity" 10 r.Health.queue_capacity

(* Draining bypasses hysteresis, latches, and renders on the wire. *)
let test_health_draining_latch () =
  let module Telemetry = Netembed_telemetry.Telemetry in
  let registry = Telemetry.Registry.create () in
  let h = Health.create ~config:health_config ~registry () in
  check Alcotest.bool "healthy before drain" true
    (Health.state h = Health.Healthy);
  Health.set_draining h;
  check Alcotest.bool "draining immediately" true
    (Health.state h = Health.Draining);
  check Alcotest.bool "evaluate cannot leave draining" true
    (Health.evaluate h ~queue_depth:0 ~queue_capacity:10 = Health.Draining);
  check (Alcotest.float 0.0) "gauge draining" 3.0
    (Telemetry.Gauge.value
       (Telemetry.Registry.gauge registry "netembed_health_state"));
  let line = Wire.encode_health (Health.report h) in
  let contains hay needle =
    let lh = String.length hay and ln = String.length needle in
    let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
    go 0
  in
  check Alcotest.bool "wire line carries the state" true
    (contains line "state=draining");
  check Alcotest.bool "wire line carries the code" true (contains line "code=3")

(* Service.submit feeds the machine: errors (including backpressure
   sheds) burn the error budget, successes feed latency. *)
let test_health_fed_by_service () =
  let module Telemetry = Netembed_telemetry.Telemetry in
  let registry = Telemetry.Registry.create () in
  let svc = Service.create ~registry (Model.create (host ())) in
  let good = Request.make ~query:(path_query 5.0 15.0) standard_constraint in
  let bad = Request.make ~query:(path_query 5.0 15.0) "vEdge.>>>" in
  (match Service.submit svc good with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  ignore (Service.submit svc bad);
  let r = Health.report (Service.health svc) in
  check Alcotest.bool "latency observed" true (r.Health.fast_p99_s > 0.0);
  check Alcotest.bool "error rate observed" true
    (r.Health.fast_error_rate > 0.0 && r.Health.fast_error_rate < 1.0)

let prop_wire_decode_total =
  QCheck.Test.make ~name:"wire decode is total on garbage" ~count:300
    QCheck.(string_of_size (QCheck.Gen.int_range 0 120))
    (fun s ->
      (match Wire.decode_request s with Ok _ | Error _ -> true)
      && match Wire.decode_answer s with Ok _ | Error _ -> true)

let () =
  Alcotest.run "service"
    [
      ( "model",
        [
          Alcotest.test_case "snapshot isolated" `Quick test_model_snapshot_isolated;
          Alcotest.test_case "revision" `Quick test_model_revision;
          Alcotest.test_case "reserve/release" `Quick test_model_reserve;
          Alcotest.test_case "reserve duplicate" `Quick test_model_reserve_duplicate;
          Alcotest.test_case "reserved attribute" `Quick test_model_reserved_attr;
        ] );
      ( "service",
        [
          Alcotest.test_case "submit end-to-end" `Quick test_submit_end_to_end;
          Alcotest.test_case "bad constraint" `Quick test_submit_bad_constraint;
          Alcotest.test_case "reservation excludes" `Quick test_reservation_excludes;
          Alcotest.test_case "allocate + stale" `Quick test_allocate_and_conflict;
          Alcotest.test_case "relaxation loop" `Quick test_relaxation;
          Alcotest.test_case "request relax" `Quick test_request_relax;
          Alcotest.test_case "constraint file" `Quick test_constraint_file;
          Alcotest.test_case "allocate shared lifecycle" `Quick
            test_allocate_shared_lifecycle;
          Alcotest.test_case "migrate is atomic" `Quick test_migrate_atomic;
          Alcotest.test_case "admission rejection" `Quick test_admission_rejection;
          Alcotest.test_case "backpressure reject is EXPLAIN-able" `Quick
            test_backpressure_reject_explainable;
          Alcotest.test_case "4-domain hammer balances telemetry" `Quick
            test_concurrent_hammer;
        ] );
      ( "filter cache",
        [
          Alcotest.test_case "LRU hit/miss/eviction" `Quick test_filter_cache_lru;
          Alcotest.test_case "revision invalidation" `Quick test_filter_cache_invalidation;
          Alcotest.test_case "signature sensitivity" `Quick
            test_filter_cache_signature_sensitivity;
          Alcotest.test_case "warm = cold answer" `Quick test_service_cache_warm_vs_cold;
          Alcotest.test_case "invalidated on model update" `Quick
            test_service_cache_revision_invalidation;
          Alcotest.test_case "LNS bypasses cache" `Quick test_service_cache_skips_lns;
          Alcotest.test_case "parallel path" `Quick test_service_parallel_path;
        ] );
      ( "tracing",
        [
          Alcotest.test_case "trace ids and phases" `Quick test_tracing_and_phases;
          Alcotest.test_case "top report + wire verb" `Quick
            test_top_report_and_wire;
          Alcotest.test_case "slow-search flag" `Quick test_slow_search_flag;
        ] );
      ( "wire",
        [
          Alcotest.test_case "request roundtrip" `Quick test_wire_request_roundtrip;
          Alcotest.test_case "answer roundtrip" `Quick test_wire_answer_roundtrip;
          Alcotest.test_case "errors" `Quick test_wire_errors;
          Alcotest.test_case "commands" `Quick test_wire_commands;
          Alcotest.test_case "frame size bound + resync" `Quick
            test_wire_frame_bound;
          QCheck_alcotest.to_alcotest prop_wire_decode_total;
        ] );
      ( "health",
        [
          Alcotest.test_case "hysteresis both directions" `Quick
            test_health_hysteresis;
          Alcotest.test_case "queue watermark band" `Quick
            test_health_queue_watermarks;
          Alcotest.test_case "draining latch + wire" `Quick
            test_health_draining_latch;
          Alcotest.test_case "fed by the service" `Quick
            test_health_fed_by_service;
        ] );
      ( "monitor",
        [
          Alcotest.test_case "updates model" `Quick test_monitor_updates;
          Alcotest.test_case "flaps + liveness guard" `Quick test_monitor_flaps_and_guard;
          Alcotest.test_case "relaxation under flaps" `Quick
            test_relaxation_under_monitor_flaps;
          Alcotest.test_case "deterministic" `Quick test_monitor_determinism;
        ] );
    ]
