module Sim = Netembed_simulate.Sim
module Regular = Netembed_topology.Regular
module Telemetry = Netembed_telemetry.Telemetry

let check = Alcotest.check

let substrate () = Regular.capacitated Regular.Clique 12

let base_cfg =
  {
    Sim.default_config with
    Sim.horizon = 120.0;
    arrival_rate = 1.8;
    policy = Sim.Defrag_threshold;
  }

(* Same seed + policy => byte-identical event log, identical acceptance
   and final fragmentation — across repeated runs and across service
   domain counts (the simulator submits sequential-mode requests, which
   the service never parallelizes).  The domain counts cross-checked
   are {1, 4} plus DOMAINS when set, so the CI matrix leg feeds in. *)
let domains_under_test =
  let base = [ 1; 4 ] in
  match Sys.getenv_opt "DOMAINS" with
  | None -> base
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some d when d >= 1 -> List.sort_uniq compare (d :: base)
      | Some _ | None -> base)

let test_deterministic_replay () =
  let run domains =
    Sim.run { base_cfg with Sim.domains } (substrate ())
  in
  let a = run 1 and b = run 1 in
  check Alcotest.(list string) "event log replays" a.Sim.event_log b.Sim.event_log;
  check Alcotest.int "accepts replay" a.Sim.accepts b.Sim.accepts;
  check (Alcotest.float 0.0) "final fragmentation replays"
    a.Sim.final_fragmentation b.Sim.final_fragmentation;
  List.iter
    (fun d ->
      let c = run d in
      let name what = Printf.sprintf "domains=%d replays %s" d what in
      check Alcotest.(list string) (name "the log") a.Sim.event_log
        c.Sim.event_log;
      check Alcotest.int (name "accepts") a.Sim.accepts c.Sim.accepts;
      check (Alcotest.float 0.0) (name "fragmentation")
        a.Sim.final_fragmentation c.Sim.final_fragmentation)
    domains_under_test;
  check Alcotest.bool "the run did something" true (a.Sim.accepts > 0)

(* Every run must drain to a bit-exact ledger: all tenants depart, no
   allocation outstanding, zero usage, zero fragmentation. *)
let test_drains_pristine () =
  List.iter
    (fun policy ->
      let stats = Sim.run { base_cfg with Sim.policy } (substrate ()) in
      check Alcotest.int
        (Sim.policy_name policy ^ ": no invariant violations")
        0 stats.Sim.invariant_violations;
      check Alcotest.int
        (Sim.policy_name policy ^ ": everyone departed")
        stats.Sim.accepts stats.Sim.departures;
      check (Alcotest.float 0.0)
        (Sim.policy_name policy ^ ": ledger restored")
        0.0 stats.Sim.final_fragmentation)
    Sim.all_policies

(* Injected migration failures mid-defrag must roll back: victims stay
   allocated, no partial charges leak (the final drain still reaches
   exactly zero), and the service counters stay balanced — every accept
   is one allocation, migrations add none, active ends at zero. *)
let test_migration_failure_atomicity () =
  let registry = Telemetry.Registry.create () in
  let cfg =
    {
      base_cfg with
      Sim.inject_migration_failure = Some (fun n -> n mod 2 = 1);
    }
  in
  let stats = Sim.run ~registry cfg (substrate ()) in
  check Alcotest.bool "defrag ran" true (stats.Sim.defrag_passes > 0);
  check Alcotest.bool "failures were injected" true
    (stats.Sim.migration_failures > 0);
  check Alcotest.int "no invariant violations" 0 stats.Sim.invariant_violations;
  let counter name =
    Telemetry.Counter.value (Telemetry.Registry.counter registry name)
  in
  check Alcotest.int "allocations_total = accepts (migrations add none)"
    stats.Sim.accepts
    (counter "netembed_allocations_total");
  check (Alcotest.float 0.0) "active_allocations drained" 0.0
    (Telemetry.Gauge.value
       (Telemetry.Registry.gauge registry "netembed_active_allocations"));
  check Alcotest.int "service saw the migrations" stats.Sim.migrations
    (counter "netembed_migrations_total");
  check Alcotest.int "service saw the rollbacks" stats.Sim.migration_failures
    (counter "netembed_migration_failures_total");
  check Alcotest.int "sim counters exported" stats.Sim.arrivals
    (counter "netembed_sim_arrivals_total");
  check Alcotest.int "sim accept counter" stats.Sim.accepts
    (counter "netembed_sim_accepts_total")

(* The point of the defrag pass: at a load where rejections are
   fragmentation-driven, re-homing victims wins admissions back. *)
let test_defrag_beats_no_defrag () =
  let at policy =
    Sim.run
      { base_cfg with Sim.policy; horizon = 300.0; arrival_rate = 1.8 }
      (substrate ())
  in
  let defrag = at Sim.Defrag_threshold and plain = at Sim.No_defrag in
  check Alcotest.bool "defrag migrated" true (defrag.Sim.migrations > 0);
  check Alcotest.bool
    (Printf.sprintf "defrag acceptance %d >= no_defrag %d" defrag.Sim.accepts
       plain.Sim.accepts)
    true
    (defrag.Sim.accepts >= plain.Sim.accepts);
  check Alcotest.bool "defrag revenue acceptance wins" true
    (defrag.Sim.revenue_acceptance >= plain.Sim.revenue_acceptance)

let test_samples_and_summary () =
  let cfg = { base_cfg with Sim.sample_every = 10.0 } in
  let stats = Sim.run cfg (substrate ()) in
  check Alcotest.bool "time series collected" true
    (List.length stats.Sim.samples >= 12);
  (* samples are chronological and carry per-resource utilization *)
  let times = List.map (fun s -> s.Sim.s_time) stats.Sim.samples in
  check Alcotest.bool "chronological" true (List.sort compare times = times);
  List.iter
    (fun s ->
      check Alcotest.bool "cpu utilization tracked" true
        (List.exists (fun (r, k, _) -> r = "cpuMhz" && k = "node") s.Sim.s_utilization))
    stats.Sim.samples;
  let summary = Sim.summary cfg stats in
  check Alcotest.bool "summary mentions the policy" true
    (let sub = Sim.policy_name cfg.Sim.policy in
     let n = String.length summary and m = String.length sub in
     let rec go i = i + m <= n && (String.sub summary i m = sub || go (i + 1)) in
     go 0)

let () =
  Alcotest.run "simulate"
    [
      ( "online churn",
        [
          Alcotest.test_case "deterministic replay (runs and domains)" `Quick
            test_deterministic_replay;
          Alcotest.test_case "drains pristine under all policies" `Quick
            test_drains_pristine;
          Alcotest.test_case "migration-failure atomicity" `Quick
            test_migration_failure_atomicity;
          Alcotest.test_case "defrag beats no_defrag" `Quick
            test_defrag_beats_no_defrag;
          Alcotest.test_case "samples + summary" `Quick test_samples_and_summary;
        ] );
    ]
