module Telemetry = Netembed_telemetry.Telemetry
module Counter = Telemetry.Counter
module Gauge = Telemetry.Gauge
module Histogram = Telemetry.Histogram
module Registry = Telemetry.Registry
module Span = Telemetry.Span
module Stats = Netembed_workload.Stats
module Graph = Netembed_graph.Graph
module Attrs = Netembed_attr.Attrs
module Value = Netembed_attr.Value
module Engine = Netembed_core.Engine
module Problem = Netembed_core.Problem
module Expr = Netembed_expr.Expr

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* Counters and gauges                                                 *)
(* ------------------------------------------------------------------ *)

let test_counter () =
  let c = Counter.make () in
  Counter.incr c;
  Counter.add c 41;
  check Alcotest.int "value" 42 (Counter.value c);
  (match Counter.add c (-1) with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "negative add accepted");
  let d = Counter.make () in
  Counter.add d 8;
  Counter.merge_into ~dst:d c;
  check Alcotest.int "merged" 50 (Counter.value d);
  Counter.reset c;
  check Alcotest.int "reset" 0 (Counter.value c)

let test_gauge () =
  let g = Gauge.make () in
  check (Alcotest.float 0.0) "initial" 0.0 (Gauge.value g);
  Gauge.set g 3.5;
  Gauge.set g (-2.25);
  check (Alcotest.float 0.0) "last write wins" (-2.25) (Gauge.value g)

(* ------------------------------------------------------------------ *)
(* Histogram bucket layout                                             *)
(* ------------------------------------------------------------------ *)

(* Every value must land in the unique bucket whose half-open range
   (prev_upper, upper] contains it. *)
let bucket_invariant v =
  let i = Histogram.bucket_index v in
  let upper = Histogram.bucket_upper i in
  let v' = max 0 v in
  v' <= upper && (i = 0 || v' > Histogram.bucket_upper (i - 1))

let test_bucket_boundaries () =
  (* Exact small values, both sides of every small bucket bound, the
     direct-table limit, and the extremes. *)
  let samples =
    [ min_int; -1; 0; 1; 2; 9; 10; 11; 12; 100; 4095; 4096; 4097; 65535;
      1_000_000; max_int - 1; max_int ]
  in
  List.iter
    (fun v ->
      if not (bucket_invariant v) then
        Alcotest.failf "bucket invariant broken at %d (bucket %d)" v
          (Histogram.bucket_index v))
    samples;
  (* Boundaries proper: every bucket's upper bound maps to that bucket,
     and upper+1 maps to the next. *)
  for i = 0 to Histogram.bucket_count - 2 do
    let u = Histogram.bucket_upper i in
    check Alcotest.int (Printf.sprintf "upper(%d) in own bucket" i) i
      (Histogram.bucket_index u);
    check Alcotest.int (Printf.sprintf "upper(%d)+1 in next bucket" i) (i + 1)
      (Histogram.bucket_index (u + 1))
  done;
  (* Uppers are strictly increasing with ~20% max relative growth. *)
  for i = 1 to Histogram.bucket_count - 2 do
    let p = Histogram.bucket_upper (i - 1) and u = Histogram.bucket_upper i in
    if not (u > p) then Alcotest.failf "uppers not increasing at %d" i;
    if not (u <= max (p + 1) (p * 6 / 5)) then
      Alcotest.failf "bucket %d grows too fast: %d -> %d" i p u
  done;
  check Alcotest.int "catch-all is max_int" max_int
    (Histogram.bucket_upper (Histogram.bucket_count - 1))

let test_observe_extremes () =
  let h = Histogram.make () in
  Histogram.observe h 0;
  Histogram.observe h (-5);
  check Alcotest.int "zero bucket holds both" 2 (Histogram.bucket_value h 0);
  Histogram.observe h max_int;
  check Alcotest.int "count" 3 (Histogram.count h);
  check Alcotest.int "max observed" max_int (Histogram.max_observed h);
  check Alcotest.int "catch-all occupied" 1
    (Histogram.bucket_value h (Histogram.bucket_count - 1));
  check (Alcotest.float 0.0) "p100 is catch-all bound" (float_of_int max_int)
    (Histogram.quantile h 1.0)

(* Value -> bucket -> quantile round-trip: the quantile of the rank a
   value occupies must bound that value within one bucket's relative
   resolution, and must agree with the exact Stats.percentile the same
   way. *)
let test_quantile_round_trip () =
  let rng = Netembed_rng.Rng.make 7 in
  let values =
    Array.init 500 (fun i ->
        if i < 50 then i (* dense small values, exact buckets *)
        else Netembed_rng.Rng.int rng 100_000)
  in
  let h = Histogram.make () in
  Array.iter (Histogram.observe h) values;
  let sample = List.map float_of_int (Array.to_list values) in
  List.iter
    (fun q ->
      let exact = Stats.percentile q sample in
      let bucketed = Histogram.quantile h q in
      if not (bucketed >= exact) then
        Alcotest.failf "q=%.2f: bucketed %.0f below exact %.0f" q bucketed exact;
      if not (bucketed <= (exact *. 1.2) +. 1.0) then
        Alcotest.failf "q=%.2f: bucketed %.0f too far above exact %.0f" q bucketed
          exact)
    [ 0.0; 0.25; 0.5; 0.9; 0.99; 1.0 ];
  check Alcotest.int "sum preserved" (Array.fold_left ( + ) 0 values)
    (Histogram.sum h);
  (match Histogram.quantile h 1.5 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "quantile outside [0,1] accepted");
  check (Alcotest.float 0.0) "empty histogram quantile" 0.0
    (Histogram.quantile (Histogram.make ()) 0.5)

let test_histogram_merge () =
  let a = Histogram.make () and b = Histogram.make () and whole = Histogram.make () in
  for v = 0 to 99 do
    Histogram.observe (if v mod 2 = 0 then a else b) v;
    Histogram.observe whole v
  done;
  Histogram.merge_into ~dst:a b;
  check Alcotest.int "merged count" (Histogram.count whole) (Histogram.count a);
  check Alcotest.int "merged sum" (Histogram.sum whole) (Histogram.sum a);
  check Alcotest.int "merged max" (Histogram.max_observed whole)
    (Histogram.max_observed a);
  for i = 0 to Histogram.bucket_count - 1 do
    if Histogram.bucket_value whole i <> Histogram.bucket_value a i then
      Alcotest.failf "bucket %d differs after merge" i
  done

(* ------------------------------------------------------------------ *)
(* Registry and expositions                                            *)
(* ------------------------------------------------------------------ *)

let test_registry_identity_and_kinds () =
  let r = Registry.create () in
  let c1 = Registry.counter r "reqs_total" ~labels:[ ("b", "2"); ("a", "1") ] in
  (* Same name + same label set (any order) is the same counter. *)
  let c2 = Registry.counter r "reqs_total" ~labels:[ ("a", "1"); ("b", "2") ] in
  Counter.incr c1;
  check Alcotest.int "one cell" 1 (Counter.value c2);
  (match Registry.gauge r "reqs_total" ~labels:[ ("a", "1"); ("b", "2") ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "kind clash accepted");
  (match Registry.counter r "bad name!" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "bad metric name accepted")

let test_registry_merge () =
  let a = Registry.create () and b = Registry.create () in
  Counter.add (Registry.counter a "c_total") 5;
  Counter.add (Registry.counter b "c_total") 7;
  Gauge.set (Registry.gauge b "g") 9.0;
  Histogram.observe (Registry.histogram b "h") 3;
  Registry.merge_into ~dst:a b;
  check Alcotest.int "counters added" 12 (Counter.value (Registry.counter a "c_total"));
  check (Alcotest.float 0.0) "gauge takes source" 9.0
    (Gauge.value (Registry.gauge a "g"));
  check Alcotest.int "histogram created and merged" 1
    (Histogram.count (Registry.histogram a "h"))

let test_prometheus_exposition () =
  let r = Registry.create () in
  Counter.add (Registry.counter r ~help:"Visits" "v_total" ~labels:[ ("algorithm", "ECF") ]) 3;
  Counter.add (Registry.counter r ~help:"Visits" "v_total" ~labels:[ ("algorithm", "LNS") ]) 4;
  Gauge.set (Registry.gauge r "rev") 2.0;
  let h = Registry.histogram r "lat_us" in
  Histogram.observe h 1;
  Histogram.observe h 7;
  Histogram.observe h 7;
  let text = Registry.to_prometheus r in
  let lines = String.split_on_char '\n' text in
  let has l = List.mem l lines in
  check Alcotest.bool "help line" true (has "# HELP v_total Visits");
  check Alcotest.bool "type line" true (has "# TYPE v_total counter");
  check Alcotest.bool "ECF sample" true (has "v_total{algorithm=\"ECF\"} 3");
  check Alcotest.bool "LNS sample" true (has "v_total{algorithm=\"LNS\"} 4");
  (* Label variants must be contiguous (one family block). *)
  let rec index i = function
    | [] -> -1
    | l :: rest -> if l = "v_total{algorithm=\"ECF\"} 3" then i else index (i + 1) rest
  in
  let ecf_at = index 0 lines in
  check Alcotest.bool "family contiguous" true
    (List.nth lines (ecf_at + 1) = "v_total{algorithm=\"LNS\"} 4");
  check Alcotest.bool "gauge sample" true (has "rev 2");
  (* Histogram: cumulative buckets, +Inf equals count, sum and count. *)
  check Alcotest.bool "bucket le=1" true (has "lat_us_bucket{le=\"1\"} 1");
  check Alcotest.bool "bucket le=7" true (has "lat_us_bucket{le=\"7\"} 3");
  check Alcotest.bool "bucket +Inf" true (has "lat_us_bucket{le=\"+Inf\"} 3");
  check Alcotest.bool "sum" true (has "lat_us_sum 15");
  check Alcotest.bool "count" true (has "lat_us_count 3")

let contains s sub =
  let n = String.length sub in
  let rec find i = i + n <= String.length s && (String.sub s i n = sub || find (i + 1)) in
  find 0

let test_json_exposition () =
  let r = Registry.create () in
  Counter.add (Registry.counter r "c_total") 2;
  Histogram.observe (Registry.histogram r "h") 5;
  let json = Registry.to_json r in
  check Alcotest.bool "counter field" true (contains json "\"c_total\":2");
  check Alcotest.bool "histogram count field" true (contains json "\"count\":1");
  check Alcotest.bool "object shape" true
    (json.[0] = '{' && json.[String.length json - 1] = '}')

(* ------------------------------------------------------------------ *)
(* Span tracing                                                        *)
(* ------------------------------------------------------------------ *)

let test_span_jsonl () =
  let path = Filename.temp_file "netembed" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      Span.enable oc;
      check Alcotest.bool "enabled" true (Span.enabled ());
      Span.set_sample_every 2;
      Span.with_span "outer" (fun () ->
          Span.with_span "inner" (fun () -> ());
          Span.event "solution";
          (* sampled out *)
          Span.event "solution" (* emitted *));
      (* Exceptions still pop the span. *)
      (try Span.with_span "boom" (fun () -> failwith "x") with Failure _ -> ());
      Span.disable ();
      Span.set_sample_every 1;
      close_out oc;
      check Alcotest.bool "disabled" false (Span.enabled ());
      let ic = open_in path in
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> close_in ic);
      let lines = List.rev !lines in
      let count sub =
        List.length
          (List.filter
             (fun l ->
               let n = String.length sub in
               let rec find i =
                 i + n <= String.length l && (String.sub l i n = sub || find (i + 1))
               in
               find 0)
             lines)
      in
      check Alcotest.int "enters" 3 (count "\"ev\":\"enter\"");
      check Alcotest.int "exits" 3 (count "\"ev\":\"exit\"");
      check Alcotest.int "events sampled 1-in-2" 1 (count "\"ev\":\"event\"");
      check Alcotest.int "outer span named" 2 (count "\"span\":\"outer\"");
      List.iter
        (fun l ->
          if String.length l < 2 || l.[0] <> '{' || l.[String.length l - 1] <> '}'
          then Alcotest.failf "not a JSON object line: %s" l)
        lines)

(* Nesting past the preallocated 64-deep span stack must not crash or
   corrupt — the overflow is counted on the drops counter (and the
   default registry's netembed_spans_dropped_total). *)
let test_span_stack_overflow_counted () =
  let path = Filename.temp_file "netembed" ".jsonl" in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () ->
      Span.disable ();
      close_out oc;
      Sys.remove path)
    (fun () ->
      Span.enable oc;
      let before = Span.dropped () in
      let depth = 80 in
      let rec descend n =
        if n > 0 then Span.with_span "deep" (fun () -> descend (n - 1))
      in
      descend depth;
      check Alcotest.int "levels past 64 counted as dropped" (depth - 64)
        (Span.dropped () - before);
      (* Balanced exits: a second run drops exactly the same amount, so
         the stack pointer did not drift. *)
      descend depth;
      check Alcotest.int "no stack-pointer drift" (2 * (depth - 64))
        (Span.dropped () - before));
  let prometheus = Registry.to_prometheus Telemetry.default_registry in
  let contains sub =
    let n = String.length sub in
    let rec go i =
      i + n <= String.length prometheus
      && (String.sub prometheus i n = sub || go (i + 1))
    in
    go 0
  in
  check Alcotest.bool "exposed in the default registry" true
    (contains "netembed_spans_dropped_total")

(* ------------------------------------------------------------------ *)
(* Gauge merge (the parallel-join step)                                *)
(* ------------------------------------------------------------------ *)

let test_gauge_merge () =
  let src = Gauge.make () and dst = Gauge.make () in
  Gauge.set src 4.5;
  Gauge.set dst 1.0;
  Gauge.merge_into ~dst src;
  check (Alcotest.float 0.0) "gauge takes source" 4.5 (Gauge.value dst);
  Gauge.merge_into ~dst src;
  check (Alcotest.float 0.0) "idempotent" 4.5 (Gauge.value dst)

(* ------------------------------------------------------------------ *)
(* Sliding-window histograms                                           *)
(* ------------------------------------------------------------------ *)

module Windowed = Telemetry.Windowed

(* A hand-cranked clock: tests control exactly which slice each
   observation lands in and when slices expire. *)
let fake_clock start =
  let now = ref start in
  (now, fun () -> !now)

let test_windowed_empty () =
  let _now, clock = fake_clock 1000.0 in
  let w = Windowed.create ~clock ~window:60.0 ~slices:6 () in
  check Alcotest.int "empty count" 0 (Windowed.count w);
  check (Alcotest.float 0.0) "empty quantile" 0.0 (Windowed.quantile w 0.95)

let test_windowed_rotation () =
  let now, clock = fake_clock 1000.0 in
  (* 60 s window, 6 slices: each slice covers 10 s. *)
  let w = Windowed.create ~clock ~window:60.0 ~slices:6 () in
  Windowed.observe w 100;
  Windowed.observe w 200;
  check Alcotest.int "both visible" 2 (Windowed.count w);
  (* Straddle a slice boundary: the next observation lands in a fresh
     slice while the previous one is still live. *)
  now := !now +. 10.0;
  Windowed.observe w 300;
  check Alcotest.int "straddling a rotation keeps both slices" 3
    (Windowed.count w);
  (* 65 s after the first two observations (past the window), 55 s
     after the third (still inside): only the third survives — without
     any intervening observe, so reads must filter stale slices
     themselves. *)
  now := !now +. 55.0;
  check Alcotest.int "expired slices dropped" 1 (Windowed.count w);
  now := !now +. 60.0;
  check Alcotest.int "fully drained" 0 (Windowed.count w);
  (* A slice slot is recycled when its absolute slice number comes
     around again: observing now must not resurrect the old counts. *)
  Windowed.observe w 400;
  check Alcotest.int "recycled slot starts clean" 1 (Windowed.count w)

let test_windowed_longer_than_lifetime () =
  (* Window longer than the process has lived: the clock starts near 0
     so every slice since the epoch is within the window — nothing may
     expire. *)
  let now, clock = fake_clock 1.0 in
  let w = Windowed.create ~clock ~window:3600.0 ~slices:6 () in
  Windowed.observe w 1000;
  now := !now +. 5.0;
  Windowed.observe w 1000;
  check Alcotest.int "all observations live" 2 (Windowed.count w);
  (* Nearest-rank quantile on a log-bucketed histogram: the answer is
     the bucket upper bound, within one growth step (x6/5) of the
     value. *)
  let q = Windowed.quantile w 0.5 in
  check Alcotest.bool "quantile within a bucket of the value" true
    (q >= 1000.0 && q <= 1200.0)

let test_windowed_scale () =
  (* scale is a render-time multiplier: observe µs, read seconds. *)
  let _now, clock = fake_clock 42.0 in
  let w = Windowed.create ~clock ~scale:1e-6 ~window:60.0 ~slices:6 () in
  Windowed.observe w 1_000_000;
  let q = Windowed.quantile w 0.99 in
  check Alcotest.bool "scaled to seconds" true (q >= 1.0 && q <= 1.2)

let test_windowed_merge () =
  let now, clock = fake_clock 500.0 in
  let a = Windowed.create ~clock ~window:60.0 ~slices:6 () in
  let b = Windowed.create ~clock ~window:60.0 ~slices:6 () in
  Windowed.observe a 10;
  now := !now +. 10.0;
  Windowed.observe b 20;
  (* The join step of the parallel scheduler: a worker's windowed
     series merges into the dispatcher's from another domain. *)
  Domain.join (Domain.spawn (fun () -> Windowed.merge_into ~dst:a b));
  check Alcotest.int "merged count" 2 (Windowed.count a);
  check Alcotest.int "source untouched" 1 (Windowed.count b);
  let c = Windowed.create ~clock ~window:60.0 ~slices:5 () in
  (match Windowed.merge_into ~dst:a c with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "mismatched geometry accepted")

(* ------------------------------------------------------------------ *)
(* Request-scoped trace buffers                                        *)
(* ------------------------------------------------------------------ *)

module Trace_buf = Telemetry.Trace

let test_trace_buffer () =
  let id1 = Trace_buf.fresh_id () in
  let id2 = Trace_buf.fresh_id () in
  check Alcotest.bool "ids fresh and nonzero" true (id1 > 0 && id2 > id1);
  let b = Trace_buf.create () in
  check Alcotest.int "span returns its value" 42
    (Trace_buf.span b "outer" (fun () -> 42));
  Trace_buf.add ~tid:3 b ~name:"worker_span" ~start_us:10.0 ~dur_us:5.0;
  check Alcotest.int "events recorded" 2 (Trace_buf.length b);
  (* span_opt is the zero-cost gate: None must still run the thunk. *)
  check Alcotest.int "span_opt None runs" 7
    (Trace_buf.span_opt None "skipped" (fun () -> 7));
  check Alcotest.int "span_opt None records nothing" 2 (Trace_buf.length b);
  (* A worker buffer merges in keeping its tid — stolen frames
     attribute to the thief's lane but the request's trace. *)
  let w = Trace_buf.create ~tid:7 () in
  Trace_buf.span w "stolen_frame" (fun () -> ());
  Trace_buf.merge_into ~dst:b w;
  check Alcotest.int "merged events" 3 (Trace_buf.length b);
  let tids = ref [] in
  Trace_buf.iter (fun ~name:_ ~tid ~start_us:_ ~dur_us:_ -> tids := tid :: !tids) b;
  List.iter
    (fun t ->
      check Alcotest.bool (Printf.sprintf "tid %d present" t) true
        (List.mem t !tids))
    [ 0; 3; 7 ]

let test_trace_chrome_json () =
  let b = Trace_buf.create () in
  Trace_buf.add b ~name:"request" ~start_us:100.0 ~dur_us:50.0;
  Trace_buf.add ~tid:2 b ~name:"search_frame" ~start_us:110.0 ~dur_us:20.0;
  let id = Trace_buf.fresh_id () in
  let json = Trace_buf.to_chrome_json ~trace_id:id b in
  let has sub =
    let n = String.length sub in
    let rec go i = i + n <= String.length json && (String.sub json i n = sub || go (i + 1)) in
    go 0
  in
  check Alcotest.bool "traceEvents array" true (has "\"traceEvents\"");
  check Alcotest.bool "complete events" true (has "\"ph\":\"X\"");
  check Alcotest.bool "trace id attributed" true
    (has (Printf.sprintf "\"trace_id\":%d" id));
  check Alcotest.bool "worker tid present" true (has "\"tid\":2");
  check Alcotest.bool "names present" true
    (has "\"name\":\"request\"" && has "\"name\":\"search_frame\"");
  (* Timestamps are shifted to the earliest event. *)
  check Alcotest.bool "timestamps rebased" true (has "\"ts\":0")

(* ------------------------------------------------------------------ *)
(* Engine integration: one snapshot schema for all three algorithms    *)
(* ------------------------------------------------------------------ *)

let small_problem () =
  let delay d = Attrs.of_list [ ("avgDelay", Value.Float d) ] in
  let band lo hi =
    Attrs.of_list [ ("minDelay", Value.Float lo); ("maxDelay", Value.Float hi) ]
  in
  let host = Graph.create ~name:"host" () in
  let v = Array.init 6 (fun _ -> Graph.add_node host Attrs.empty) in
  for i = 0 to 5 do
    ignore (Graph.add_edge host v.(i) v.((i + 1) mod 6) (delay (10.0 +. float_of_int i)))
  done;
  ignore (Graph.add_edge host v.(0) v.(3) (delay 25.0));
  let query = Graph.create ~name:"q" () in
  let q0 = Graph.add_node query Attrs.empty in
  let q1 = Graph.add_node query Attrs.empty in
  let q2 = Graph.add_node query Attrs.empty in
  ignore (Graph.add_edge query q0 q1 (band 5.0 40.0));
  ignore (Graph.add_edge query q1 q2 (band 5.0 40.0));
  Problem.make ~host ~query
    (Expr.parse_exn "rEdge.avgDelay >= vEdge.minDelay && rEdge.avgDelay <= vEdge.maxDelay")

let test_snapshot_all_algorithms () =
  List.iter
    (fun alg ->
      let p = small_problem () in
      let r =
        (* prefilter off: this test pins that every algorithm reports
           its constraint evaluations, so none may be elided *)
        Engine.run
          ~options:
            { Engine.default_options with Engine.mode = Engine.All; prefilter = false }
          alg p
      in
      let s = r.Engine.telemetry in
      check Alcotest.string "algorithm" (Engine.algorithm_name alg)
        s.Telemetry.algorithm;
      check Alcotest.int "visited agrees" r.Engine.visited s.Telemetry.visited;
      check Alcotest.int "found agrees" r.Engine.found s.Telemetry.found;
      check Alcotest.int "evals agree with result" r.Engine.filter_evals
        s.Telemetry.constraint_evals;
      (* The headline satellite: LNS must report constraint evaluations
         now, like the filtered algorithms. *)
      if not (s.Telemetry.constraint_evals > 0) then
        Alcotest.failf "%s reports no constraint evaluations"
          (Engine.algorithm_name alg);
      check Alcotest.int "depth histogram counts every visit" r.Engine.visited
        (Histogram.count s.Telemetry.depth_histogram);
      if not (s.Telemetry.max_depth >= 3) then
        Alcotest.failf "max_depth %d below solution depth" s.Telemetry.max_depth;
      if s.Telemetry.domains_built > 0 && Histogram.count s.Telemetry.domain_size_histogram = 0
      then Alcotest.fail "domains built but size histogram empty";
      (* The JSON snapshot line parses shallowly: one object, the
         algorithm field present. *)
      let json = Telemetry.snapshot_to_json s in
      if String.length json = 0 || json.[0] <> '{' then
        Alcotest.failf "bad snapshot json: %s" json)
    Engine.all_algorithms

let test_backtracks_counted () =
  let p = small_problem () in
  let r =
    Engine.run ~options:{ Engine.default_options with Engine.mode = Engine.All }
      Engine.ECF p
  in
  match r.Engine.domain_stats with
  | None -> Alcotest.fail "no domain stats"
  | Some st ->
      check Alcotest.bool "backtracks counted" true
        (st.Netembed_core.Domain_store.backtracks > 0);
      check Alcotest.int "stats and snapshot agree"
        st.Netembed_core.Domain_store.backtracks r.Engine.telemetry.Telemetry.backtracks

(* ------------------------------------------------------------------ *)
(* Runtime sampler                                                     *)
(* ------------------------------------------------------------------ *)

module Runtime = Netembed_telemetry.Runtime

(* The sampler slot is global: double starts and double stops must be
   no-ops, and a restart against a fresh registry (a Service restart)
   must come up clean and publish into the new registry. *)
let test_runtime_sampler_idempotent () =
  let r1 = Registry.create () in
  check Alcotest.bool "not running initially" false (Runtime.running ());
  Runtime.start ~registry:r1 ~interval:0.01 ();
  check Alcotest.bool "running" true (Runtime.running ());
  (* Second start is absorbed by the live slot. *)
  Runtime.start ~registry:r1 ~interval:0.01 ();
  check Alcotest.bool "still one sampler" true (Runtime.running ());
  Runtime.publish_minor_words ();
  Thread.delay 0.08;
  Runtime.stop ();
  check Alcotest.bool "stopped" false (Runtime.running ());
  Runtime.stop ();
  check Alcotest.bool "double stop is a no-op" false (Runtime.running ());
  let gauge reg name = Gauge.value (Registry.gauge reg name) in
  check Alcotest.bool "heap gauge sampled" true
    (gauge r1 "netembed_gc_heap_words" > 0.0);
  let self = string_of_int (Domain.self () :> int) in
  check Alcotest.bool "per-domain allocation gauge published" true
    (Gauge.value
       (Registry.gauge r1
          ~labels:[ ("domain", self) ]
          "netembed_domain_minor_words")
    > 0.0);
  (* Restart against a fresh registry — the Service-restart path. *)
  let r2 = Registry.create () in
  Runtime.start ~registry:r2 ~interval:0.01 ();
  check Alcotest.bool "restarted" true (Runtime.running ());
  Thread.delay 0.05;
  Runtime.stop ();
  check Alcotest.bool "heap gauge sampled after restart" true
    (gauge r2 "netembed_gc_heap_words" > 0.0);
  check Alcotest.bool "bad interval rejected" true
    (try
       Runtime.start ~registry:r2 ~interval:0.0 ();
       false
     with Invalid_argument _ -> true)

(* The allocation profiler's folded dump always yields at least one
   line — real samples when Memprof works, an explicit marker when the
   runtime does not support it (OCaml 5.1 multicore) or when nothing
   was sampled — so a CI artifact check can demand a non-empty file. *)
let test_alloc_profile_dump_nonempty () =
  Runtime.Alloc_profile.reset ();
  Runtime.Alloc_profile.start ~sampling_rate:1e-2 ();
  if Runtime.Alloc_profile.active () then begin
    Sys.opaque_identity (List.init 5000 (fun i -> string_of_int i)) |> ignore;
    Runtime.Alloc_profile.stop ()
  end
  else
    check Alcotest.bool "inactive only because unsupported" false
      (Runtime.Alloc_profile.supported ());
  let file = Filename.temp_file "netembed_alloc" ".folded" in
  Fun.protect ~finally:(fun () -> Sys.remove file) @@ fun () ->
  let oc = open_out file in
  Runtime.Alloc_profile.dump_folded oc;
  close_out oc;
  let ic = open_in file in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  check Alcotest.bool "at least one folded line" true (List.length !lines >= 1);
  List.iter
    (fun line ->
      match String.rindex_opt line ' ' with
      | None -> Alcotest.failf "unparseable folded line: %s" line
      | Some i ->
          let count =
            int_of_string_opt
              (String.sub line (i + 1) (String.length line - i - 1))
          in
          check Alcotest.bool "folded line ends in a count" true
            (match count with Some n -> n > 0 | None -> false))
    !lines

let () =
  Alcotest.run "telemetry"
    [
      ( "scalars",
        [
          Alcotest.test_case "counter" `Quick test_counter;
          Alcotest.test_case "gauge" `Quick test_gauge;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "bucket boundaries" `Quick test_bucket_boundaries;
          Alcotest.test_case "extremes 0/max_int" `Quick test_observe_extremes;
          Alcotest.test_case "quantile round-trip vs Stats.percentile" `Quick
            test_quantile_round_trip;
          Alcotest.test_case "merge" `Quick test_histogram_merge;
        ] );
      ( "registry",
        [
          Alcotest.test_case "identity and kinds" `Quick test_registry_identity_and_kinds;
          Alcotest.test_case "merge" `Quick test_registry_merge;
          Alcotest.test_case "prometheus exposition" `Quick test_prometheus_exposition;
          Alcotest.test_case "json exposition" `Quick test_json_exposition;
        ] );
      ( "span",
        [
          Alcotest.test_case "jsonl trace" `Quick test_span_jsonl;
          Alcotest.test_case "stack overflow counted" `Quick
            test_span_stack_overflow_counted;
        ] );
      ( "gauge merge",
        [ Alcotest.test_case "takes source value" `Quick test_gauge_merge ] );
      ( "windowed",
        [
          Alcotest.test_case "empty window" `Quick test_windowed_empty;
          Alcotest.test_case "rotation and expiry" `Quick test_windowed_rotation;
          Alcotest.test_case "window longer than lifetime" `Quick
            test_windowed_longer_than_lifetime;
          Alcotest.test_case "render-time scale" `Quick test_windowed_scale;
          Alcotest.test_case "cross-domain merge" `Quick test_windowed_merge;
        ] );
      ( "trace",
        [
          Alcotest.test_case "buffers, spans, merge" `Quick test_trace_buffer;
          Alcotest.test_case "chrome trace json" `Quick test_trace_chrome_json;
        ] );
      ( "engine",
        [
          Alcotest.test_case "snapshot for ECF/RWB/LNS" `Quick
            test_snapshot_all_algorithms;
          Alcotest.test_case "backtracks counted" `Quick test_backtracks_counted;
        ] );
      ( "runtime",
        [
          Alcotest.test_case "sampler start/stop idempotent across restarts"
            `Quick test_runtime_sampler_idempotent;
          Alcotest.test_case "alloc profile dump never empty" `Quick
            test_alloc_profile_dump_nonempty;
        ] );
    ]
