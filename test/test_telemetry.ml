module Telemetry = Netembed_telemetry.Telemetry
module Counter = Telemetry.Counter
module Gauge = Telemetry.Gauge
module Histogram = Telemetry.Histogram
module Registry = Telemetry.Registry
module Span = Telemetry.Span
module Stats = Netembed_workload.Stats
module Graph = Netembed_graph.Graph
module Attrs = Netembed_attr.Attrs
module Value = Netembed_attr.Value
module Engine = Netembed_core.Engine
module Problem = Netembed_core.Problem
module Expr = Netembed_expr.Expr

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* Counters and gauges                                                 *)
(* ------------------------------------------------------------------ *)

let test_counter () =
  let c = Counter.make () in
  Counter.incr c;
  Counter.add c 41;
  check Alcotest.int "value" 42 (Counter.value c);
  (match Counter.add c (-1) with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "negative add accepted");
  let d = Counter.make () in
  Counter.add d 8;
  Counter.merge_into ~dst:d c;
  check Alcotest.int "merged" 50 (Counter.value d);
  Counter.reset c;
  check Alcotest.int "reset" 0 (Counter.value c)

let test_gauge () =
  let g = Gauge.make () in
  check (Alcotest.float 0.0) "initial" 0.0 (Gauge.value g);
  Gauge.set g 3.5;
  Gauge.set g (-2.25);
  check (Alcotest.float 0.0) "last write wins" (-2.25) (Gauge.value g)

(* ------------------------------------------------------------------ *)
(* Histogram bucket layout                                             *)
(* ------------------------------------------------------------------ *)

(* Every value must land in the unique bucket whose half-open range
   (prev_upper, upper] contains it. *)
let bucket_invariant v =
  let i = Histogram.bucket_index v in
  let upper = Histogram.bucket_upper i in
  let v' = max 0 v in
  v' <= upper && (i = 0 || v' > Histogram.bucket_upper (i - 1))

let test_bucket_boundaries () =
  (* Exact small values, both sides of every small bucket bound, the
     direct-table limit, and the extremes. *)
  let samples =
    [ min_int; -1; 0; 1; 2; 9; 10; 11; 12; 100; 4095; 4096; 4097; 65535;
      1_000_000; max_int - 1; max_int ]
  in
  List.iter
    (fun v ->
      if not (bucket_invariant v) then
        Alcotest.failf "bucket invariant broken at %d (bucket %d)" v
          (Histogram.bucket_index v))
    samples;
  (* Boundaries proper: every bucket's upper bound maps to that bucket,
     and upper+1 maps to the next. *)
  for i = 0 to Histogram.bucket_count - 2 do
    let u = Histogram.bucket_upper i in
    check Alcotest.int (Printf.sprintf "upper(%d) in own bucket" i) i
      (Histogram.bucket_index u);
    check Alcotest.int (Printf.sprintf "upper(%d)+1 in next bucket" i) (i + 1)
      (Histogram.bucket_index (u + 1))
  done;
  (* Uppers are strictly increasing with ~20% max relative growth. *)
  for i = 1 to Histogram.bucket_count - 2 do
    let p = Histogram.bucket_upper (i - 1) and u = Histogram.bucket_upper i in
    if not (u > p) then Alcotest.failf "uppers not increasing at %d" i;
    if not (u <= max (p + 1) (p * 6 / 5)) then
      Alcotest.failf "bucket %d grows too fast: %d -> %d" i p u
  done;
  check Alcotest.int "catch-all is max_int" max_int
    (Histogram.bucket_upper (Histogram.bucket_count - 1))

let test_observe_extremes () =
  let h = Histogram.make () in
  Histogram.observe h 0;
  Histogram.observe h (-5);
  check Alcotest.int "zero bucket holds both" 2 (Histogram.bucket_value h 0);
  Histogram.observe h max_int;
  check Alcotest.int "count" 3 (Histogram.count h);
  check Alcotest.int "max observed" max_int (Histogram.max_observed h);
  check Alcotest.int "catch-all occupied" 1
    (Histogram.bucket_value h (Histogram.bucket_count - 1));
  check (Alcotest.float 0.0) "p100 is catch-all bound" (float_of_int max_int)
    (Histogram.quantile h 1.0)

(* Value -> bucket -> quantile round-trip: the quantile of the rank a
   value occupies must bound that value within one bucket's relative
   resolution, and must agree with the exact Stats.percentile the same
   way. *)
let test_quantile_round_trip () =
  let rng = Netembed_rng.Rng.make 7 in
  let values =
    Array.init 500 (fun i ->
        if i < 50 then i (* dense small values, exact buckets *)
        else Netembed_rng.Rng.int rng 100_000)
  in
  let h = Histogram.make () in
  Array.iter (Histogram.observe h) values;
  let sample = List.map float_of_int (Array.to_list values) in
  List.iter
    (fun q ->
      let exact = Stats.percentile q sample in
      let bucketed = Histogram.quantile h q in
      if not (bucketed >= exact) then
        Alcotest.failf "q=%.2f: bucketed %.0f below exact %.0f" q bucketed exact;
      if not (bucketed <= (exact *. 1.2) +. 1.0) then
        Alcotest.failf "q=%.2f: bucketed %.0f too far above exact %.0f" q bucketed
          exact)
    [ 0.0; 0.25; 0.5; 0.9; 0.99; 1.0 ];
  check Alcotest.int "sum preserved" (Array.fold_left ( + ) 0 values)
    (Histogram.sum h);
  (match Histogram.quantile h 1.5 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "quantile outside [0,1] accepted");
  check (Alcotest.float 0.0) "empty histogram quantile" 0.0
    (Histogram.quantile (Histogram.make ()) 0.5)

let test_histogram_merge () =
  let a = Histogram.make () and b = Histogram.make () and whole = Histogram.make () in
  for v = 0 to 99 do
    Histogram.observe (if v mod 2 = 0 then a else b) v;
    Histogram.observe whole v
  done;
  Histogram.merge_into ~dst:a b;
  check Alcotest.int "merged count" (Histogram.count whole) (Histogram.count a);
  check Alcotest.int "merged sum" (Histogram.sum whole) (Histogram.sum a);
  check Alcotest.int "merged max" (Histogram.max_observed whole)
    (Histogram.max_observed a);
  for i = 0 to Histogram.bucket_count - 1 do
    if Histogram.bucket_value whole i <> Histogram.bucket_value a i then
      Alcotest.failf "bucket %d differs after merge" i
  done

(* ------------------------------------------------------------------ *)
(* Registry and expositions                                            *)
(* ------------------------------------------------------------------ *)

let test_registry_identity_and_kinds () =
  let r = Registry.create () in
  let c1 = Registry.counter r "reqs_total" ~labels:[ ("b", "2"); ("a", "1") ] in
  (* Same name + same label set (any order) is the same counter. *)
  let c2 = Registry.counter r "reqs_total" ~labels:[ ("a", "1"); ("b", "2") ] in
  Counter.incr c1;
  check Alcotest.int "one cell" 1 (Counter.value c2);
  (match Registry.gauge r "reqs_total" ~labels:[ ("a", "1"); ("b", "2") ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "kind clash accepted");
  (match Registry.counter r "bad name!" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "bad metric name accepted")

let test_registry_merge () =
  let a = Registry.create () and b = Registry.create () in
  Counter.add (Registry.counter a "c_total") 5;
  Counter.add (Registry.counter b "c_total") 7;
  Gauge.set (Registry.gauge b "g") 9.0;
  Histogram.observe (Registry.histogram b "h") 3;
  Registry.merge_into ~dst:a b;
  check Alcotest.int "counters added" 12 (Counter.value (Registry.counter a "c_total"));
  check (Alcotest.float 0.0) "gauge takes source" 9.0
    (Gauge.value (Registry.gauge a "g"));
  check Alcotest.int "histogram created and merged" 1
    (Histogram.count (Registry.histogram a "h"))

let test_prometheus_exposition () =
  let r = Registry.create () in
  Counter.add (Registry.counter r ~help:"Visits" "v_total" ~labels:[ ("algorithm", "ECF") ]) 3;
  Counter.add (Registry.counter r ~help:"Visits" "v_total" ~labels:[ ("algorithm", "LNS") ]) 4;
  Gauge.set (Registry.gauge r "rev") 2.0;
  let h = Registry.histogram r "lat_us" in
  Histogram.observe h 1;
  Histogram.observe h 7;
  Histogram.observe h 7;
  let text = Registry.to_prometheus r in
  let lines = String.split_on_char '\n' text in
  let has l = List.mem l lines in
  check Alcotest.bool "help line" true (has "# HELP v_total Visits");
  check Alcotest.bool "type line" true (has "# TYPE v_total counter");
  check Alcotest.bool "ECF sample" true (has "v_total{algorithm=\"ECF\"} 3");
  check Alcotest.bool "LNS sample" true (has "v_total{algorithm=\"LNS\"} 4");
  (* Label variants must be contiguous (one family block). *)
  let rec index i = function
    | [] -> -1
    | l :: rest -> if l = "v_total{algorithm=\"ECF\"} 3" then i else index (i + 1) rest
  in
  let ecf_at = index 0 lines in
  check Alcotest.bool "family contiguous" true
    (List.nth lines (ecf_at + 1) = "v_total{algorithm=\"LNS\"} 4");
  check Alcotest.bool "gauge sample" true (has "rev 2");
  (* Histogram: cumulative buckets, +Inf equals count, sum and count. *)
  check Alcotest.bool "bucket le=1" true (has "lat_us_bucket{le=\"1\"} 1");
  check Alcotest.bool "bucket le=7" true (has "lat_us_bucket{le=\"7\"} 3");
  check Alcotest.bool "bucket +Inf" true (has "lat_us_bucket{le=\"+Inf\"} 3");
  check Alcotest.bool "sum" true (has "lat_us_sum 15");
  check Alcotest.bool "count" true (has "lat_us_count 3")

let contains s sub =
  let n = String.length sub in
  let rec find i = i + n <= String.length s && (String.sub s i n = sub || find (i + 1)) in
  find 0

let test_json_exposition () =
  let r = Registry.create () in
  Counter.add (Registry.counter r "c_total") 2;
  Histogram.observe (Registry.histogram r "h") 5;
  let json = Registry.to_json r in
  check Alcotest.bool "counter field" true (contains json "\"c_total\":2");
  check Alcotest.bool "histogram count field" true (contains json "\"count\":1");
  check Alcotest.bool "object shape" true
    (json.[0] = '{' && json.[String.length json - 1] = '}')

(* ------------------------------------------------------------------ *)
(* Span tracing                                                        *)
(* ------------------------------------------------------------------ *)

let test_span_jsonl () =
  let path = Filename.temp_file "netembed" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      Span.enable oc;
      check Alcotest.bool "enabled" true (Span.enabled ());
      Span.set_sample_every 2;
      Span.with_span "outer" (fun () ->
          Span.with_span "inner" (fun () -> ());
          Span.event "solution";
          (* sampled out *)
          Span.event "solution" (* emitted *));
      (* Exceptions still pop the span. *)
      (try Span.with_span "boom" (fun () -> failwith "x") with Failure _ -> ());
      Span.disable ();
      Span.set_sample_every 1;
      close_out oc;
      check Alcotest.bool "disabled" false (Span.enabled ());
      let ic = open_in path in
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> close_in ic);
      let lines = List.rev !lines in
      let count sub =
        List.length
          (List.filter
             (fun l ->
               let n = String.length sub in
               let rec find i =
                 i + n <= String.length l && (String.sub l i n = sub || find (i + 1))
               in
               find 0)
             lines)
      in
      check Alcotest.int "enters" 3 (count "\"ev\":\"enter\"");
      check Alcotest.int "exits" 3 (count "\"ev\":\"exit\"");
      check Alcotest.int "events sampled 1-in-2" 1 (count "\"ev\":\"event\"");
      check Alcotest.int "outer span named" 2 (count "\"span\":\"outer\"");
      List.iter
        (fun l ->
          if String.length l < 2 || l.[0] <> '{' || l.[String.length l - 1] <> '}'
          then Alcotest.failf "not a JSON object line: %s" l)
        lines)

(* Nesting past the preallocated 64-deep span stack must not crash or
   corrupt — the overflow is counted on the drops counter (and the
   default registry's netembed_spans_dropped_total). *)
let test_span_stack_overflow_counted () =
  let path = Filename.temp_file "netembed" ".jsonl" in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () ->
      Span.disable ();
      close_out oc;
      Sys.remove path)
    (fun () ->
      Span.enable oc;
      let before = Span.dropped () in
      let depth = 80 in
      let rec descend n =
        if n > 0 then Span.with_span "deep" (fun () -> descend (n - 1))
      in
      descend depth;
      check Alcotest.int "levels past 64 counted as dropped" (depth - 64)
        (Span.dropped () - before);
      (* Balanced exits: a second run drops exactly the same amount, so
         the stack pointer did not drift. *)
      descend depth;
      check Alcotest.int "no stack-pointer drift" (2 * (depth - 64))
        (Span.dropped () - before));
  let prometheus = Registry.to_prometheus Telemetry.default_registry in
  let contains sub =
    let n = String.length sub in
    let rec go i =
      i + n <= String.length prometheus
      && (String.sub prometheus i n = sub || go (i + 1))
    in
    go 0
  in
  check Alcotest.bool "exposed in the default registry" true
    (contains "netembed_spans_dropped_total")

(* ------------------------------------------------------------------ *)
(* Engine integration: one snapshot schema for all three algorithms    *)
(* ------------------------------------------------------------------ *)

let small_problem () =
  let delay d = Attrs.of_list [ ("avgDelay", Value.Float d) ] in
  let band lo hi =
    Attrs.of_list [ ("minDelay", Value.Float lo); ("maxDelay", Value.Float hi) ]
  in
  let host = Graph.create ~name:"host" () in
  let v = Array.init 6 (fun _ -> Graph.add_node host Attrs.empty) in
  for i = 0 to 5 do
    ignore (Graph.add_edge host v.(i) v.((i + 1) mod 6) (delay (10.0 +. float_of_int i)))
  done;
  ignore (Graph.add_edge host v.(0) v.(3) (delay 25.0));
  let query = Graph.create ~name:"q" () in
  let q0 = Graph.add_node query Attrs.empty in
  let q1 = Graph.add_node query Attrs.empty in
  let q2 = Graph.add_node query Attrs.empty in
  ignore (Graph.add_edge query q0 q1 (band 5.0 40.0));
  ignore (Graph.add_edge query q1 q2 (band 5.0 40.0));
  Problem.make ~host ~query
    (Expr.parse_exn "rEdge.avgDelay >= vEdge.minDelay && rEdge.avgDelay <= vEdge.maxDelay")

let test_snapshot_all_algorithms () =
  List.iter
    (fun alg ->
      let p = small_problem () in
      let r =
        (* prefilter off: this test pins that every algorithm reports
           its constraint evaluations, so none may be elided *)
        Engine.run
          ~options:
            { Engine.default_options with Engine.mode = Engine.All; prefilter = false }
          alg p
      in
      let s = r.Engine.telemetry in
      check Alcotest.string "algorithm" (Engine.algorithm_name alg)
        s.Telemetry.algorithm;
      check Alcotest.int "visited agrees" r.Engine.visited s.Telemetry.visited;
      check Alcotest.int "found agrees" r.Engine.found s.Telemetry.found;
      check Alcotest.int "evals agree with result" r.Engine.filter_evals
        s.Telemetry.constraint_evals;
      (* The headline satellite: LNS must report constraint evaluations
         now, like the filtered algorithms. *)
      if not (s.Telemetry.constraint_evals > 0) then
        Alcotest.failf "%s reports no constraint evaluations"
          (Engine.algorithm_name alg);
      check Alcotest.int "depth histogram counts every visit" r.Engine.visited
        (Histogram.count s.Telemetry.depth_histogram);
      if not (s.Telemetry.max_depth >= 3) then
        Alcotest.failf "max_depth %d below solution depth" s.Telemetry.max_depth;
      if s.Telemetry.domains_built > 0 && Histogram.count s.Telemetry.domain_size_histogram = 0
      then Alcotest.fail "domains built but size histogram empty";
      (* The JSON snapshot line parses shallowly: one object, the
         algorithm field present. *)
      let json = Telemetry.snapshot_to_json s in
      if String.length json = 0 || json.[0] <> '{' then
        Alcotest.failf "bad snapshot json: %s" json)
    Engine.all_algorithms

let test_backtracks_counted () =
  let p = small_problem () in
  let r =
    Engine.run ~options:{ Engine.default_options with Engine.mode = Engine.All }
      Engine.ECF p
  in
  match r.Engine.domain_stats with
  | None -> Alcotest.fail "no domain stats"
  | Some st ->
      check Alcotest.bool "backtracks counted" true
        (st.Netembed_core.Domain_store.backtracks > 0);
      check Alcotest.int "stats and snapshot agree"
        st.Netembed_core.Domain_store.backtracks r.Engine.telemetry.Telemetry.backtracks

let () =
  Alcotest.run "telemetry"
    [
      ( "scalars",
        [
          Alcotest.test_case "counter" `Quick test_counter;
          Alcotest.test_case "gauge" `Quick test_gauge;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "bucket boundaries" `Quick test_bucket_boundaries;
          Alcotest.test_case "extremes 0/max_int" `Quick test_observe_extremes;
          Alcotest.test_case "quantile round-trip vs Stats.percentile" `Quick
            test_quantile_round_trip;
          Alcotest.test_case "merge" `Quick test_histogram_merge;
        ] );
      ( "registry",
        [
          Alcotest.test_case "identity and kinds" `Quick test_registry_identity_and_kinds;
          Alcotest.test_case "merge" `Quick test_registry_merge;
          Alcotest.test_case "prometheus exposition" `Quick test_prometheus_exposition;
          Alcotest.test_case "json exposition" `Quick test_json_exposition;
        ] );
      ( "span",
        [
          Alcotest.test_case "jsonl trace" `Quick test_span_jsonl;
          Alcotest.test_case "stack overflow counted" `Quick
            test_span_stack_overflow_counted;
        ] );
      ( "engine",
        [
          Alcotest.test_case "snapshot for ECF/RWB/LNS" `Quick
            test_snapshot_all_algorithms;
          Alcotest.test_case "backtracks counted" `Quick test_backtracks_counted;
        ] );
    ]
