(* Bytecode compiler / VM tests: pinned disassembly goldens, a QCheck
   differential against the interpreter (value AND error class), pinned
   error cases, bounds extraction, and the zero-allocation property. *)

module Value = Netembed_attr.Value
module Attrs = Netembed_attr.Attrs
module Ast = Netembed_expr.Ast
module Parser = Netembed_expr.Parser
module Eval = Netembed_expr.Eval
module Compile = Netembed_expr.Compile
module Vm = Netembed_expr.Vm
module Bounds = Netembed_expr.Bounds

let attrs l = Attrs.of_list l
let vnum f = Value.Float f
let vint i = Value.Int i
let vstr s = Value.String s
let vbool b = Value.Bool b

let env ?(v_edge = Attrs.empty) ?(r_edge = Attrs.empty) ?(v_source = Attrs.empty)
    ?(v_target = Attrs.empty) ?(r_source = Attrs.empty) ?(r_target = Attrs.empty) () =
  Eval.env ~v_edge ~r_edge ~v_source ~v_target ~r_source ~r_target

(* ------------------------------------------------------------------ *)
(* Disassembly goldens                                                 *)
(* ------------------------------------------------------------------ *)

let golden_cases =
  [
    ( "rEdge.avgDelay >= vEdge.minDelay && rEdge.avgDelay <= vEdge.maxDelay",
      ";; source: rEdge.avgDelay >= vEdge.minDelay && rEdge.avgDelay <= \
       vEdge.maxDelay\n\
       ;; stack: 2 cells, handlers: 0\n\
       ;; slot s0 = rEdge.avgDelay\n\
       ;; slot s1 = vEdge.minDelay\n\
       ;; slot s2 = vEdge.maxDelay\n\
      \   0: LOAD       s0  ; rEdge.avgDelay\n\
      \   2: LOAD       s1  ; vEdge.minDelay\n\
      \   4: GE\n\
      \   5: JFALSE     @15\n\
      \   7: LOAD       s0  ; rEdge.avgDelay\n\
      \   9: LOAD       s2  ; vEdge.maxDelay\n\
      \  11: LE\n\
      \  12: BOOLIFY\n\
      \  13: JMP        @16\n\
      \  15: PUSH_FALSE\n\
      \  16: HALT\n" );
    ( "isBoundTo(vSource.osType, rSource.osType)",
      ";; source: isBoundTo(vSource.osType, rSource.osType)\n\
       ;; stack: 2 cells, handlers: 1\n\
       ;; slot s0 = vSource.osType\n\
       ;; slot s1 = rSource.osType\n\
      \   0: PUSH_HA    @13\n\
      \   2: LOAD       s0  ; vSource.osType\n\
      \   4: POP_H\n\
      \   5: PUSH_HB    @16\n\
      \   7: LOAD       s1  ; rSource.osType\n\
      \   9: POP_H\n\
      \  10: EQ\n\
      \  11: JMP        @17\n\
      \  13: PUSH_TRUE\n\
      \  14: JMP        @17\n\
      \  16: PUSH_FALSE\n\
      \  17: HALT\n" );
    ( "!rSource.reserved",
      ";; source: !rSource.reserved\n\
       ;; stack: 1 cells, handlers: 0\n\
       ;; slot s0 = rSource.reserved\n\
      \   0: LOAD       s0  ; rSource.reserved\n\
      \   2: NOT\n\
      \   3: HALT\n" );
  ]

let test_disassembly_goldens () =
  List.iter
    (fun (src, expected) ->
      let p = Compile.compile (Parser.parse src) in
      Alcotest.(check string) src expected (Compile.disassemble p))
    golden_cases

(* Constant folding shows up in the disassembled source line. *)
let test_fold_consts () =
  let e = Parser.parse "rEdge.bw >= 2 * 50 + 1" in
  let folded = Compile.fold_consts e in
  Alcotest.(check string) "folded" "rEdge.bw >= 101" (Ast.to_string folded);
  (* erroring subtrees stay intact so the error surfaces at runtime *)
  let e = Parser.parse "rEdge.bw >= 1 / 0" in
  Alcotest.(check string) "div0 kept" "rEdge.bw >= 1 / 0"
    (Ast.to_string (Compile.fold_consts e));
  let p = Compile.compile (Parser.parse "1 < 2 && rEdge.up") in
  Alcotest.(check string) "true conjunct folded" "true && rEdge.up"
    (Ast.to_string p.Compile.source)

(* ------------------------------------------------------------------ *)
(* Differential harness                                                *)
(* ------------------------------------------------------------------ *)

type outcome = V of Value.t | Error_eval | Error_missing of Ast.obj * string

let outcome_to_string = function
  | V v -> "value " ^ Value.to_string v
  | Error_eval -> "Eval_error"
  | Error_missing (o, n) -> Printf.sprintf "Missing_attr %s.%s" (Ast.obj_name o) n

let outcome_equal a b =
  match (a, b) with
  | V x, V y -> Value.equal x y
  | Error_eval, Error_eval -> true
  | Error_missing (o1, n1), Error_missing (o2, n2) -> o1 = o2 && String.equal n1 n2
  | _ -> false

let interp_outcome e envv =
  match Eval.eval envv e with
  | v -> V v
  | exception Eval.Eval_error _ -> Error_eval
  | exception Eval.Missing_attr (o, n) -> Error_missing (o, n)

let vm_outcome scratch p envv =
  Vm.set_env_of scratch envv;
  match Vm.eval scratch p with
  | v -> V v
  | exception Eval.Eval_error _ -> Error_eval
  | exception Eval.Missing_attr (o, n) -> Error_missing (o, n)

type accept_outcome = A of bool | A_error

let accept_outcome_to_string = function
  | A b -> string_of_bool b
  | A_error -> "Eval_error"

let interp_accepts e envv =
  match Eval.accepts envv e with
  | b -> A b
  | exception Eval.Eval_error _ -> A_error

let vm_accepts scratch p envv =
  Vm.set_env_of scratch envv;
  match Vm.accepts scratch p with b -> A b | exception Eval.Eval_error _ -> A_error

let check_differential ?(name = "differential") e envv =
  let p = Compile.compile e in
  let scratch = Vm.scratch () in
  let i = interp_outcome e envv and v = vm_outcome scratch p envv in
  if not (outcome_equal i v) then
    Alcotest.failf "%s: %s: interpreter %s but VM %s" name (Ast.to_string e)
      (outcome_to_string i) (outcome_to_string v);
  let ia = interp_accepts e envv and va = vm_accepts scratch p envv in
  if ia <> va then
    Alcotest.failf "%s (accepts): %s: interpreter %s but VM %s" name (Ast.to_string e)
      (accept_outcome_to_string ia) (accept_outcome_to_string va)

(* ------------------------------------------------------------------ *)
(* Pinned semantic and error-class cases                               *)
(* ------------------------------------------------------------------ *)

let rich_env =
  env
    ~v_edge:(attrs [ ("bw", vnum 10.0); ("delay", vnum 4.0); ("os", vstr "linux") ])
    ~r_edge:
      (attrs
         [
           ("bw", vnum 25.0); ("delay", vnum 3.0); ("os", vstr "linux");
           ("hops", vint 2); ("up", vbool true);
         ])
    ~v_source:(attrs [ ("osType", vstr "bsd"); ("cpu", vnum 500.0) ])
    ~v_target:(attrs [ ("cpu", vnum 800.0) ])
    ~r_source:(attrs [ ("osType", vstr "bsd"); ("cpu", vnum 900.0); ("reserved", vbool false) ])
    ~r_target:(attrs [ ("cpu", vnum 1200.0) ])
    ()

let pinned_sources =
  [
    (* plain numeric / boolean traffic *)
    "rEdge.bw >= vEdge.bw";
    "rEdge.delay <= vEdge.delay";
    "rEdge.bw - vEdge.bw >= 10 && rEdge.up";
    "rEdge.bw * 2 + rEdge.hops / 2 - 1";
    "min(rEdge.bw, vEdge.bw) == 10 && max(rEdge.cpuMissing, 1) == 1 || true";
    "abs(vEdge.delay - rEdge.delay) <= 1";
    "sqrt(rEdge.bw * 4) == 10";
    "floor(rEdge.delay / 2) == 1 && ceil(rEdge.delay / 2) == 2";
    "-rEdge.delay < 0";
    (* strings and equality *)
    "rEdge.os == 'linux' && vSource.osType != 'solaris'";
    "rEdge.os < 'windows'";
    "rEdge.os == 5";
    (* mixed types are unequal, not an error *)
    "rEdge.up != 7";
    (* isBoundTo, all binding states *)
    "isBoundTo(vSource.osType, rSource.osType)";
    "isBoundTo(vSource.missing, rSource.osType)";
    (* unconstrained -> true *)
    "isBoundTo(vSource.osType, rSource.missing)";
    (* unbindable -> false *)
    "isBoundTo(vSource.cpu, rSource.cpu)";
    (* numbers unequal -> false *)
    (* integer attr compares as number *)
    "rEdge.hops == 2 && rEdge.hops < 2.5";
    (* missing attributes reject under accepts, raise under eval *)
    "rEdge.missing < 5";
    "vEdge.bw < 5 || vEdge.absent";
    (* short-circuit hides the right side entirely *)
    "rEdge.bw > 0 || rEdge.missing < 5";
    "rEdge.bw < 0 && rEdge.missing < 5";
    (* non-bool result is an accepts error, not false *)
    "1 + 1";
    "rEdge.bw";
    (* type errors *)
    "'a' + 1 == 2";
    "!5 == true";
    "true < false";
    "rEdge.os + 1 > 0";
    "!rEdge.bw";
    (* division by zero, and its ordering against missing attrs *)
    "rEdge.bw / 0 > 1";
    "rEdge.missing / 0 > 1";
    (* call errors *)
    "unknownFun(rEdge.bw) == 1";
    "unknownFun(rEdge.missing) == 1";
    (* arg evaluates first: Missing wins *)
    "abs(1, 2) == 1";
    "min(3) == 3";
    "sqrt(0 - 4) == 2";
    "isBoundTo(rEdge.missing)";
    (* arity checked before args *)
    "isBoundTo(vSource.osType, rSource.osType, 1)";
  ]

let test_pinned_differential () =
  List.iter
    (fun src -> check_differential ~name:"pinned" (Parser.parse src) rich_env)
    pinned_sources;
  (* the same sources against an empty environment: everything missing *)
  List.iter
    (fun src -> check_differential ~name:"pinned/empty" (Parser.parse src) (env ()))
    pinned_sources

let test_pinned_semantics () =
  let p = Compile.compile (Parser.parse "rEdge.bw >= vEdge.bw") in
  let s = Vm.scratch () in
  Vm.set_env_of s rich_env;
  Alcotest.(check bool) "accepts" true (Vm.accepts s p);
  (* same scratch, different env: set_r swaps the hosting side only *)
  Vm.set_r s ~r_edge:(attrs [ ("bw", vnum 1.0) ]) ~r_source:Attrs.empty
    ~r_target:Attrs.empty;
  Alcotest.(check bool) "rejects after set_r" false (Vm.accepts s p);
  Alcotest.(check bool) "accepts_env" true (Vm.accepts_env p rich_env);
  (* eval returns the typed value *)
  let p2 = Compile.compile (Parser.parse "rEdge.bw + 5") in
  Vm.set_env_of s rich_env;
  Alcotest.(check bool) "eval value" true (Value.equal (Vm.eval s p2) (vnum 30.0))

(* ------------------------------------------------------------------ *)
(* QCheck: random well-typed-ish expressions, interpreter == VM        *)
(* ------------------------------------------------------------------ *)

let objects =
  [| Ast.V_edge; Ast.R_edge; Ast.V_source; Ast.V_target; Ast.R_source; Ast.R_target |]

let attr_names = [| "a"; "b"; "c"; "d" |]

let gen_value =
  QCheck.Gen.(
    frequency
      [
        (4, map (fun i -> vnum (float_of_int i)) (int_range (-20) 20));
        (2, map (fun i -> vint i) (int_range (-20) 20));
        (2, map vstr (oneofl [ "linux"; "bsd"; "solaris" ]));
        (2, map vbool bool);
      ])

let gen_table =
  QCheck.Gen.(
    let* n = int_range 0 (Array.length attr_names) in
    let* vals = list_size (return n) gen_value in
    return
      (List.fold_left2
         (fun t name v -> Attrs.add name v t)
         Attrs.empty
         (Array.to_list (Array.sub attr_names 0 n))
         vals))

let gen_env =
  QCheck.Gen.(
    let* v_edge = gen_table in
    let* r_edge = gen_table in
    let* v_source = gen_table in
    let* v_target = gen_table in
    let* r_source = gen_table in
    let* r_target = gen_table in
    return (Eval.env ~v_edge ~r_edge ~v_source ~v_target ~r_source ~r_target))

let gen_attr =
  QCheck.Gen.(
    let* o = oneofa objects in
    let* n = oneofa attr_names in
    return (Ast.Attr (o, n)))

(* Mostly well-typed expressions with a deliberate sprinkling of
   ill-typed and erroring shapes, so the differential covers the error
   classes too. *)
let rec gen_num_expr depth =
  QCheck.Gen.(
    if depth = 0 then
      frequency
        [
          (3, map (fun i -> Ast.Num (float_of_int i)) (int_range (-9) 9));
          (3, gen_attr);
          (1, return (Ast.Num 0.0));
        ]
    else
      frequency
        [
          (2, gen_num_expr 0);
          ( 3,
            let* op = oneofl [ Ast.Add; Ast.Sub; Ast.Mul; Ast.Div ] in
            let* a = gen_num_expr (depth - 1) in
            let* b = gen_num_expr (depth - 1) in
            return (Ast.Binop (op, a, b)) );
          ( 1,
            let* a = gen_num_expr (depth - 1) in
            return (Ast.Unop (Ast.Neg, a)) );
          ( 1,
            let* f = oneofl [ "abs"; "sqrt"; "floor"; "ceil" ] in
            let* a = gen_num_expr (depth - 1) in
            return (Ast.Call (f, [ a ])) );
          ( 1,
            let* f = oneofl [ "min"; "max" ] in
            let* a = gen_num_expr (depth - 1) in
            let* b = gen_num_expr (depth - 1) in
            return (Ast.Call (f, [ a; b ])) );
        ])

let rec gen_bool_expr depth =
  QCheck.Gen.(
    if depth = 0 then
      frequency [ (2, map (fun b -> Ast.Bool b) bool); (3, gen_attr) ]
    else
      frequency
        [
          (1, gen_bool_expr 0);
          ( 3,
            let* op = oneofl [ Ast.Lt; Ast.Le; Ast.Gt; Ast.Ge ] in
            let* a = gen_num_expr (depth - 1) in
            let* b = gen_num_expr (depth - 1) in
            return (Ast.Binop (op, a, b)) );
          ( 2,
            let* op = oneofl [ Ast.Eq; Ast.Neq ] in
            let* a =
              oneof [ gen_num_expr (depth - 1); gen_attr; map (fun s -> Ast.Str s) (oneofl [ "linux"; "bsd" ]) ]
            in
            let* b =
              oneof [ gen_num_expr (depth - 1); gen_attr; map (fun s -> Ast.Str s) (oneofl [ "linux"; "bsd" ]) ]
            in
            return (Ast.Binop (op, a, b)) );
          ( 2,
            let* op = oneofl [ Ast.And; Ast.Or ] in
            let* a = gen_bool_expr (depth - 1) in
            let* b = gen_bool_expr (depth - 1) in
            return (Ast.Binop (op, a, b)) );
          ( 1,
            let* a = gen_bool_expr (depth - 1) in
            return (Ast.Unop (Ast.Not, a)) );
          ( 1,
            let* a = oneof [ gen_attr; map (fun s -> Ast.Str s) (oneofl [ "linux"; "bsd" ]) ] in
            let* b = gen_attr in
            return (Ast.Call ("isBoundTo", [ a; b ])) );
          (* deliberately ill-formed: wrong arity / unknown function *)
          ( 1,
            oneofl
              [
                Ast.Call ("isBoundTo", [ Ast.Num 1.0 ]);
                Ast.Call ("abs", [ Ast.Num 1.0; Ast.Num 2.0 ]);
                Ast.Call ("frobnicate", [ Ast.Num 1.0 ]);
                Ast.Binop (Ast.Add, Ast.Str "a", Ast.Num 1.0);
              ] );
        ])

let gen_case =
  QCheck.Gen.(
    let* e = gen_bool_expr 3 in
    let* envv = gen_env in
    return (e, envv))

let arb_case =
  QCheck.make gen_case ~print:(fun (e, _) -> Ast.to_string e)

let prop_differential (e, envv) =
  let p = Compile.compile e in
  let scratch = Vm.scratch () in
  let i = interp_outcome e envv and v = vm_outcome scratch p envv in
  if not (outcome_equal i v) then
    QCheck.Test.fail_reportf "eval: interpreter %s but VM %s" (outcome_to_string i)
      (outcome_to_string v);
  let ia = interp_accepts e envv and va = vm_accepts scratch p envv in
  if ia <> va then
    QCheck.Test.fail_reportf "accepts: interpreter %s but VM %s"
      (accept_outcome_to_string ia)
      (accept_outcome_to_string va);
  true

let qcheck_differential =
  QCheck.Test.make ~count:2000 ~name:"interpreter == VM (value and error class)"
    arb_case prop_differential

(* Specialization path: residual programs agree too. *)
let prop_residual (e, envv) =
  let residual =
    Eval.specialize ~v_edge:envv.Eval.v_edge ~v_source:envv.Eval.v_source
      ~v_target:envv.Eval.v_target e
  in
  let ia = interp_accepts residual envv in
  let p = Compile.compile residual in
  let scratch = Vm.scratch () in
  let va = vm_accepts scratch p envv in
  if ia <> va then
    QCheck.Test.fail_reportf "residual accepts: interpreter %s but VM %s"
      (accept_outcome_to_string ia)
      (accept_outcome_to_string va);
  true

let qcheck_residual =
  QCheck.Test.make ~count:500 ~name:"specialized residuals: interpreter == VM"
    arb_case prop_residual

(* ------------------------------------------------------------------ *)
(* Zero allocation in steady state                                     *)
(* ------------------------------------------------------------------ *)

let test_zero_alloc () =
  let p =
    Compile.compile
      (Parser.parse
         "rEdge.bw >= vEdge.bw && rEdge.delay <= vEdge.delay && \
          isBoundTo(vSource.osType, rSource.osType) && rEdge.missing < 5")
  in
  let s = Vm.scratch () in
  Vm.set_env_of s rich_env;
  (* warm up: capacity growth and any lazy initialization happen here *)
  for _ = 1 to 3 do
    ignore (Vm.accepts s p)
  done;
  let before = Gc.minor_words () in
  for _ = 1 to 1000 do
    ignore (Vm.accepts s p)
  done;
  let allocated = Gc.minor_words () -. before in
  Alcotest.(check (float 0.0)) "minor words per 1000 accepts" 0.0 allocated

(* ------------------------------------------------------------------ *)
(* Compile counter                                                     *)
(* ------------------------------------------------------------------ *)

let test_compiles_counter () =
  let before = Compile.compiles_total () in
  ignore (Compile.compile (Parser.parse "rEdge.bw >= 10"));
  ignore (Compile.compile (Parser.parse "rEdge.bw >= 20"));
  Alcotest.(check int) "two more compiles" (before + 2) (Compile.compiles_total ())

(* ------------------------------------------------------------------ *)
(* Bounds extraction                                                   *)
(* ------------------------------------------------------------------ *)

let atoms_to_string atoms =
  String.concat "; "
    (List.map (fun a -> Format.asprintf "%a" Bounds.pp_atom a) atoms)

let test_bounds_extraction () =
  let b =
    Bounds.of_ast
      (Parser.parse
         "rSource.cpuMhz >= 900 && rSource.os == 'linux' && !rSource.reserved \
          && rEdge.avgDelay < 20")
  in
  Alcotest.(check bool) "complete" true b.Bounds.complete;
  Alcotest.(check string) "atoms"
    "rSource.cpuMhz >= 900; rSource.os == 'linux'; !rSource.reserved; \
     rEdge.avgDelay < 20"
    (atoms_to_string b.Bounds.atoms);
  (* flipped operands and the specialized isBoundTo shape *)
  let b = Bounds.of_ast (Parser.parse "900 <= rSource.cpuMhz && isBoundTo('linux', rSource.os)") in
  Alcotest.(check bool) "complete (flipped)" true b.Bounds.complete;
  Alcotest.(check string) "atoms (flipped)"
    "rSource.cpuMhz >= 900; rSource.os == 'linux'"
    (atoms_to_string b.Bounds.atoms);
  (* a disjunction yields nothing and clears completeness *)
  let b = Bounds.of_ast (Parser.parse "rSource.cpuMhz >= 900 || rSource.x < 1") in
  Alcotest.(check bool) "incomplete (or)" false b.Bounds.complete;
  Alcotest.(check int) "no atoms (or)" 0 (List.length b.Bounds.atoms);
  (* partial recognition: the sound atom is kept, completeness cleared *)
  let b = Bounds.of_ast (Parser.parse "rEdge.a > 5 && rEdge.b * 2 < 10") in
  Alcotest.(check bool) "incomplete (arith)" false b.Bounds.complete;
  Alcotest.(check string) "atoms (arith)" "rEdge.a > 5" (atoms_to_string b.Bounds.atoms);
  (* of_program sees the folded source, so folded constants extract *)
  let b = Bounds.of_program (Compile.compile (Parser.parse "rEdge.bw >= 2 * 50")) in
  Alcotest.(check string) "atoms (folded)" "rEdge.bw >= 100"
    (atoms_to_string b.Bounds.atoms);
  Alcotest.(check bool) "complete (folded)" true b.Bounds.complete

let test_bounds_satisfied () =
  let cmp =
    Bounds.Cmp { subject = Ast.R_edge; attr = "d"; cmp = Bounds.Lt; bound = 20.0 }
  in
  let check msg expected got =
    Alcotest.(check string) msg expected
      (match got with `Pass -> "pass" | `Fail -> "fail" | `Unknown -> "unknown")
  in
  check "cmp pass" "pass" (Bounds.satisfied cmp (vnum 10.0));
  check "cmp int pass" "pass" (Bounds.satisfied cmp (vint 19));
  check "cmp fail" "fail" (Bounds.satisfied cmp (vnum 20.0));
  check "cmp non-numeric" "unknown" (Bounds.satisfied cmp (vstr "x"));
  check "cmp bool" "unknown" (Bounds.satisfied cmp (vbool true));
  let eq = Bounds.Eq { subject = Ast.R_edge; attr = "os"; value = vstr "linux" } in
  check "eq pass" "pass" (Bounds.satisfied eq (vstr "linux"));
  check "eq fail" "fail" (Bounds.satisfied eq (vstr "bsd"));
  (* eval_eq semantics: mixed types are unequal, never unknown *)
  check "eq mixed" "fail" (Bounds.satisfied eq (vnum 1.0));
  (* numeric equality crosses Int/Float *)
  let eqn = Bounds.Eq { subject = Ast.R_edge; attr = "hops"; value = vnum 2.0 } in
  check "eq int/float" "pass" (Bounds.satisfied eqn (vint 2));
  let hb = Bounds.Has_bool { subject = Ast.R_source; attr = "up"; value = true } in
  check "has_bool pass" "pass" (Bounds.satisfied hb (vbool true));
  check "has_bool fail" "fail" (Bounds.satisfied hb (vbool false));
  check "has_bool non-bool" "unknown" (Bounds.satisfied hb (vnum 1.0))

let test_bounds_interval () =
  let b = Bounds.of_ast (Parser.parse "rEdge.d >= 5 && rEdge.d < 20 && rEdge.x == 7") in
  let lo, hi = Bounds.interval b Ast.R_edge "d" in
  Alcotest.(check (float 0.0)) "lo" 5.0 lo;
  Alcotest.(check (float 0.0)) "hi" 20.0 hi;
  let lo, hi = Bounds.interval b Ast.R_edge "x" in
  Alcotest.(check (float 0.0)) "eq lo" 7.0 lo;
  Alcotest.(check (float 0.0)) "eq hi" 7.0 hi;
  let lo, hi = Bounds.interval b Ast.R_edge "unconstrained" in
  Alcotest.(check bool) "open interval" true
    (lo = Float.neg_infinity && hi = Float.infinity)

(* Soundness of atoms against the real evaluator: a Fail verdict on a
   candidate value implies accepts is false whenever that object carries
   that value. *)
let bounds_sound_prop (e, envv) =
  let b = Bounds.of_ast e in
  let lookup (obj : Ast.obj) name =
    let t =
      match obj with
      | Ast.V_edge -> envv.Eval.v_edge
      | Ast.R_edge -> envv.Eval.r_edge
      | Ast.V_source -> envv.Eval.v_source
      | Ast.V_target -> envv.Eval.v_target
      | Ast.R_source -> envv.Eval.r_source
      | Ast.R_target -> envv.Eval.r_target
    in
    Attrs.find name t
  in
  let verdict =
    List.fold_left
      (fun acc atom ->
        if acc = `Drop then `Drop
        else
          let obj, name = Bounds.atom_subject atom in
          match lookup obj name with
          | None -> `Drop (* absent attribute: always a safe drop *)
          | Some v -> (
              match Bounds.satisfied atom v with
              | `Fail -> `Drop
              | `Pass | `Unknown -> acc))
      `Keep b.Bounds.atoms
  in
  match verdict with
  | `Keep -> true
  | `Drop -> (
      (* dropping is only sound if accepts would have said false (or
         raised a type error that early dropping is allowed to hide) *)
      match Eval.accepts envv e with
      | true -> QCheck.Test.fail_reportf "bounds dropped an accepted candidate"
      | false -> true
      | exception Eval.Eval_error _ -> true)

let qcheck_bounds_sound =
  QCheck.Test.make ~count:2000 ~name:"bounds Fail verdicts are sound" arb_case
    bounds_sound_prop

(* ------------------------------------------------------------------ *)

let qsuite = List.map QCheck_alcotest.to_alcotest
    [ qcheck_differential; qcheck_residual; qcheck_bounds_sound ]

let () =
  Alcotest.run "vm"
    [
      ( "compile",
        [
          Alcotest.test_case "disassembly goldens" `Quick test_disassembly_goldens;
          Alcotest.test_case "constant folding" `Quick test_fold_consts;
          Alcotest.test_case "compiles counter" `Quick test_compiles_counter;
        ] );
      ( "vm",
        [
          Alcotest.test_case "pinned differential" `Quick test_pinned_differential;
          Alcotest.test_case "pinned semantics" `Quick test_pinned_semantics;
          Alcotest.test_case "zero allocation" `Quick test_zero_alloc;
        ] );
      ( "bounds",
        [
          Alcotest.test_case "extraction" `Quick test_bounds_extraction;
          Alcotest.test_case "satisfied" `Quick test_bounds_satisfied;
          Alcotest.test_case "interval" `Quick test_bounds_interval;
        ] );
      ("qcheck", qsuite);
    ]
