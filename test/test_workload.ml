module Graph = Netembed_graph.Graph
module Attrs = Netembed_attr.Attrs
module Rng = Netembed_rng.Rng
module Stats = Netembed_workload.Stats
module Table = Netembed_workload.Table
module Query_gen = Netembed_workload.Query_gen
module Figures = Netembed_workload.Figures
module Trace = Netembed_planetlab.Trace
open Netembed_core

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)
(* ------------------------------------------------------------------ *)

let test_summary () =
  let s = Stats.summarize [ 1.0; 2.0; 3.0; 4.0 ] in
  check Alcotest.int "n" 4 s.Stats.n;
  check (Alcotest.float 1e-9) "mean" 2.5 s.Stats.mean;
  check (Alcotest.float 1e-9) "median" 2.5 s.Stats.median;
  check (Alcotest.float 1e-9) "min" 1.0 s.Stats.min;
  check (Alcotest.float 1e-9) "max" 4.0 s.Stats.max;
  check (Alcotest.float 1e-6) "stddev" 1.2909944487 s.Stats.stddev;
  let single = Stats.summarize [ 7.0 ] in
  check (Alcotest.float 1e-9) "single stddev" 0.0 single.Stats.stddev;
  check (Alcotest.float 1e-9) "odd median" 2.0 (Stats.summarize [ 3.0; 1.0; 2.0 ]).Stats.median;
  Alcotest.check_raises "empty" (Invalid_argument "Stats.summarize: empty sample")
    (fun () -> ignore (Stats.summarize []))

let test_percentile () =
  let xs = [ 10.0; 20.0; 30.0; 40.0; 50.0 ] in
  check (Alcotest.float 1e-9) "p0 = min" 10.0 (Stats.percentile 0.0 xs);
  check (Alcotest.float 1e-9) "p50 = median" 30.0 (Stats.percentile 0.5 xs);
  check (Alcotest.float 1e-9) "p100 = max" 50.0 (Stats.percentile 1.0 xs);
  check (Alcotest.float 1e-9) "unsorted input" 30.0 (Stats.percentile 0.5 [ 50.0; 10.0; 30.0; 40.0; 20.0 ]);
  Alcotest.check_raises "empty" (Invalid_argument "Stats.percentile: empty sample")
    (fun () -> ignore (Stats.percentile 0.5 []));
  Alcotest.check_raises "out of range" (Invalid_argument "Stats.percentile: p outside [0,1]")
    (fun () -> ignore (Stats.percentile 1.5 xs))

let test_csv () =
  let path = Filename.temp_file "netembed" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      Table.print_csv ~out:oc ~header:[ "a"; "b" ]
        [ [ "1"; "x,y" ]; [ "2"; "say \"hi\"" ] ];
      close_out oc;
      let ic = open_in path in
      let l1 = input_line ic and l2 = input_line ic and l3 = input_line ic in
      close_in ic;
      check Alcotest.string "header" "a,b" l1;
      check Alcotest.string "comma quoted" "1,\"x,y\"" l2;
      check Alcotest.string "quote doubled" "2,\"say \"\"hi\"\"\"" l3)

let test_fraction () =
  check (Alcotest.float 1e-9) "half" 0.5 (Stats.fraction (fun x -> x > 0) [ 1; -1; 2; -2 ]);
  check (Alcotest.float 1e-9) "empty" 0.0 (Stats.fraction (fun _ -> true) [])

let test_table () =
  let buf_path = Filename.temp_file "netembed" ".tbl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove buf_path)
    (fun () ->
      let oc = open_out buf_path in
      Table.print_series ~out:oc ~title:"t" ~header:[ "a"; "bb" ]
        [ [ "1"; "2" ]; [ "333"; "4" ] ];
      close_out oc;
      let ic = open_in buf_path in
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> close_in ic);
      let lines = List.rev !lines in
      check Alcotest.bool "title comment" true (List.nth lines 0 = "# t");
      check Alcotest.bool "has rows" true (List.length lines >= 4));
  check Alcotest.string "cell_ms" "1500.0" (Table.cell_ms 1.5);
  check Alcotest.string "cell_pct" "50.0" (Table.cell_pct 0.5)

(* ------------------------------------------------------------------ *)
(* Query generators                                                    *)
(* ------------------------------------------------------------------ *)

let host () = Trace.generate (Rng.make 3) { Trace.default with Trace.sites = 60 }

let test_subgraph_feasible () =
  let rng = Rng.make 4 in
  let host = host () in
  for _ = 1 to 5 do
    let case = Query_gen.subgraph rng ~host ~n:8 () in
    check Alcotest.int "size" 8 (Graph.node_count case.Query_gen.query);
    check Alcotest.bool "hint" true (case.Query_gen.feasible_hint = Some true);
    let p = Problem.make ~host ~query:case.Query_gen.query case.Query_gen.edge_constraint in
    check Alcotest.bool "actually feasible" true (Engine.find_first Engine.ECF p <> None)
  done

let test_make_infeasible () =
  let rng = Rng.make 5 in
  let host = host () in
  let case = Query_gen.subgraph rng ~host ~n:8 () in
  let bad = Query_gen.make_infeasible rng case in
  check Alcotest.bool "hint" true (bad.Query_gen.feasible_hint = Some false);
  (* Topology unchanged. *)
  check Alcotest.int "same nodes" (Graph.node_count case.Query_gen.query)
    (Graph.node_count bad.Query_gen.query);
  check Alcotest.int "same edges" (Graph.edge_count case.Query_gen.query)
    (Graph.edge_count bad.Query_gen.query);
  let p = Problem.make ~host ~query:bad.Query_gen.query bad.Query_gen.edge_constraint in
  let r = Engine.run ~options:{ Engine.default_options with Engine.mode = Engine.All } Engine.ECF p in
  check Alcotest.bool "proved infeasible" true
    (r.Engine.outcome = Engine.Complete && r.Engine.mappings = [])

let test_clique_case () =
  let case = Query_gen.clique ~k:5 ~delay_lo:10.0 ~delay_hi:100.0 in
  check Alcotest.int "nodes" 5 (Graph.node_count case.Query_gen.query);
  check Alcotest.int "edges" 10 (Graph.edge_count case.Query_gen.query);
  Graph.iter_edges
    (fun e _ _ ->
      let a = Graph.edge_attrs case.Query_gen.query e in
      check (Alcotest.option (Alcotest.float 0.0)) "lo" (Some 10.0) (Attrs.float "minDelay" a);
      check (Alcotest.option (Alcotest.float 0.0)) "hi" (Some 100.0) (Attrs.float "maxDelay" a))
    case.Query_gen.query

let test_composite_cases () =
  let rng = Rng.make 6 in
  let case =
    Query_gen.composite rng ~root:Netembed_topology.Regular.Ring ~groups:3
      ~group:Netembed_topology.Regular.Star ~group_size:4
      ~constraints:Query_gen.Regular_bands
  in
  check Alcotest.int "nodes" 12 (Graph.node_count case.Query_gen.query);
  (* Root edges carry the wide-area band. *)
  Graph.iter_edges
    (fun e _ _ ->
      let a = Graph.edge_attrs case.Query_gen.query e in
      match Attrs.string "level" a with
      | Some "root" ->
          check (Alcotest.option (Alcotest.float 0.0)) "root band" (Some 75.0)
            (Attrs.float "minDelay" a)
      | Some "group" ->
          check (Alcotest.option (Alcotest.float 0.0)) "group band" (Some 1.0)
            (Attrs.float "minDelay" a)
      | Some _ | None -> Alcotest.fail "missing level")
    case.Query_gen.query;
  let irregular =
    Query_gen.composite rng ~root:Netembed_topology.Regular.Star ~groups:3
      ~group:Netembed_topology.Regular.Ring ~group_size:4
      ~constraints:Query_gen.Irregular_bands
  in
  Graph.iter_edges
    (fun e _ _ ->
      let a = Graph.edge_attrs irregular.Query_gen.query e in
      let lo = Option.get (Attrs.float "minDelay" a) in
      let hi = Option.get (Attrs.float "maxDelay" a) in
      if not (25.0 <= lo && lo < hi && hi <= 175.0) then
        Alcotest.failf "irregular band [%g,%g] outside 25-175" lo hi)
    irregular.Query_gen.query

(* ------------------------------------------------------------------ *)
(* Figures (smoke at micro scale)                                      *)
(* ------------------------------------------------------------------ *)

let micro =
  {
    Figures.default_scale with
    Figures.label = "micro";
    timeout = 1.0;
    pl_query_sizes = [ 8; 12 ];
    pl_reps = 1;
    brite_hosts = [ 60 ];
    brite_query_fractions = [ 0.15 ];
    brite_reps = 1;
    clique_sizes = [ 2; 3 ];
    composite_groups = [ 2 ];
    composite_reps = 1;
  }

let devnull f =
  let out = open_out (if Sys.win32 then "NUL" else "/dev/null") in
  Fun.protect ~finally:(fun () -> close_out out) (fun () -> f out)

let test_figures_smoke () =
  devnull (fun out ->
      Figures.fig8 ~out micro;
      Figures.fig10 ~out micro;
      Figures.fig11 ~out micro;
      Figures.fig13 ~out micro;
      Figures.fig14 ~out micro;
      Figures.fig15 ~out micro)

(* Bench_io: textual surgery on one top-level key must leave every
   other byte of the document alone. *)
let test_bench_io_splice_extract () =
  let module B = Netembed_workload.Bench_io in
  let check = Alcotest.check in
  let doc =
    "{\n  \"benches\": [ {\"name\": \"a}b\", \"ms\": 1.5} ],\n  \"note\": \"escaped \\\" brace {\"\n}\n"
  in
  check (Alcotest.option Alcotest.string) "array section extracted"
    (Some "[ {\"name\": \"a}b\", \"ms\": 1.5} ]")
    (B.extract_section doc ~key:"benches");
  check (Alcotest.option Alcotest.string) "scalar with tricky escapes"
    (Some "\"escaped \\\" brace {\"")
    (B.extract_section doc ~key:"note");
  check (Alcotest.option Alcotest.string) "absent key" None
    (B.extract_section doc ~key:"service_load");
  (* Insert a fresh section, then read it back and confirm the other
     sections survive byte-for-byte. *)
  let v = "{\n    \"rows\": [1, 2, 3]\n  }" in
  let doc' = B.splice_section doc ~key:"service_load" ~value:v in
  check (Alcotest.option Alcotest.string) "inserted section readable" (Some v)
    (B.extract_section doc' ~key:"service_load");
  check (Alcotest.option Alcotest.string) "existing section untouched"
    (B.extract_section doc ~key:"benches")
    (B.extract_section doc' ~key:"benches");
  (* Replace in place. *)
  let doc'' = B.splice_section doc' ~key:"service_load" ~value:"[]" in
  check (Alcotest.option Alcotest.string) "replaced in place" (Some "[]")
    (B.extract_section doc'' ~key:"service_load");
  check (Alcotest.option Alcotest.string) "note still intact"
    (B.extract_section doc ~key:"note")
    (B.extract_section doc'' ~key:"note");
  (* Degenerate document: becomes a fresh one-key object. *)
  let fresh = B.splice_section "" ~key:"k" ~value:"42" in
  check (Alcotest.option Alcotest.string) "fresh doc" (Some "42")
    (B.extract_section fresh ~key:"k")

(* The online_churn section the simulator splices must round-trip next
   to the bench and loadgen sections without disturbing them — all
   three owners rewrite the same file wholesale. *)
let test_bench_io_online_churn_roundtrip () =
  let module B = Netembed_workload.Bench_io in
  let check = Alcotest.check in
  let doc =
    "{\n  \"benches\": [ {\"name\": \"ecf\", \"ms\": 1.5} ],\n\
    \  \"service_load\": {\n    \"rows\": []\n  }\n}\n"
  in
  let churn =
    "{\n    \"substrate\": \"clique-12\",\n    \"rows\": [\n      {\"policy\": \
     \"defrag_threshold\", \"rate\": 1.8, \"acceptance_curve\": [{\"t\": 10, \
     \"accepts\": 3}]}\n    ]\n  }"
  in
  let doc' = B.splice_section doc ~key:"online_churn" ~value:churn in
  check (Alcotest.option Alcotest.string) "online_churn readable" (Some churn)
    (B.extract_section doc' ~key:"online_churn");
  check (Alcotest.option Alcotest.string) "benches survive"
    (B.extract_section doc ~key:"benches")
    (B.extract_section doc' ~key:"benches");
  check (Alcotest.option Alcotest.string) "service_load survives"
    (B.extract_section doc ~key:"service_load")
    (B.extract_section doc' ~key:"service_load");
  (* A second splice (a re-run) replaces in place and still leaves the
     neighbours alone. *)
  let doc'' = B.splice_section doc' ~key:"online_churn" ~value:"{}" in
  check (Alcotest.option Alcotest.string) "replaced" (Some "{}")
    (B.extract_section doc'' ~key:"online_churn");
  check (Alcotest.option Alcotest.string) "benches still survive"
    (B.extract_section doc ~key:"benches")
    (B.extract_section doc'' ~key:"benches")

let () =
  Alcotest.run "workload"
    [
      ( "stats",
        [
          Alcotest.test_case "summary" `Quick test_summary;
          Alcotest.test_case "fraction" `Quick test_fraction;
          Alcotest.test_case "percentile" `Quick test_percentile;
          Alcotest.test_case "csv" `Quick test_csv;
          Alcotest.test_case "table" `Quick test_table;
        ] );
      ( "query_gen",
        [
          Alcotest.test_case "subgraph feasible" `Quick test_subgraph_feasible;
          Alcotest.test_case "make_infeasible" `Quick test_make_infeasible;
          Alcotest.test_case "clique" `Quick test_clique_case;
          Alcotest.test_case "composite" `Quick test_composite_cases;
        ] );
      ( "bench io",
        [
          Alcotest.test_case "splice/extract surgery" `Quick
            test_bench_io_splice_extract;
          Alcotest.test_case "online_churn round-trip" `Quick
            test_bench_io_online_churn_roundtrip;
        ] );
      ( "figures", [ Alcotest.test_case "smoke" `Slow test_figures_smoke ] );
    ]
